// Package sendblock defines an interprocedural analyzer enforcing the
// "never block ingest" rule: a channel send reachable from a //mpros:hotpath
// or //mpros:ingest root must not be able to wedge on a slow consumer. The
// serving tier's Watch subscriptions already follow this discipline
// (lossy select-with-default delivery); this analyzer generalizes it from a
// test-only property to machine-checked lint across the whole ingest fan-out.
//
// A send passes when it is:
//
//   - the communication statement of a select that has a default clause
//     (lossy delivery — the hot path moves on), or
//   - on a channel provably buffered module-wide: every assignment the
//     analyzer can see gives it make(chan T, n) with constant n > 0, and no
//     assignment aliases it to anything weaker.
//
// Everything else — an unbuffered channel, a caller-provided channel of
// unknown capacity, a select without default — is flagged. Failure paths
// (cold spans) are exempt, and deliberate blocking sends take a reasoned
// //lint:allow sendblock.
package sendblock

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

// Analyzer flags potentially blocking channel sends on ingest paths.
var Analyzer = &analysis.Analyzer{
	Name:      "sendblock",
	Doc:       "channel sends reachable from //mpros:hotpath or //mpros:ingest roots must be select-with-default or provably buffered",
	RunModule: run,
}

func run(pass *analysis.ModulePass) error {
	g := callgraph.Build(pass.Fset, pass.Units)
	roots := g.Roots(analysis.AnnotationHotPath)
	roots = append(roots, g.Roots(analysis.AnnotationIngest)...)
	reach := g.Reachable(roots)

	facts := collectBufferFacts(pass.Units)

	for _, id := range sortedIDs(reach) {
		n := reach.Nodes[id]
		if analysis.IsTestFile(pass.Fset, n.Decl.Pos()) {
			continue
		}
		checkNode(pass, reach, n, facts)
	}
	return nil
}

func sortedIDs(reach *callgraph.Reach) []string {
	ids := make([]string, 0, len(reach.Nodes))
	for id := range reach.Nodes {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}

func checkNode(pass *analysis.ModulePass, reach *callgraph.Reach, n *callgraph.Node, facts *bufFacts) {
	info := n.Unit.TypesInfo

	// Sends that are the comm statement of a select with a default clause are
	// lossy by construction.
	lossy := map[*ast.SendStmt]bool{}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		sel, ok := node.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, clause := range sel.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, clause := range sel.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			if send, ok := cc.Comm.(*ast.SendStmt); ok {
				lossy[send] = true
			}
		}
		return true
	})

	via := ""
	if chain := reach.Chain(n.ID); len(chain) > 1 {
		via = " (reachable via " + strings.Join(chain, " -> ") + ")"
	}

	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		send, ok := node.(*ast.SendStmt)
		if !ok {
			return true
		}
		if lossy[send] || n.IsCold(send.Pos()) {
			return true
		}
		if facts.provablyBuffered(send.Chan, n.Unit, info) {
			return true
		}
		pass.Reportf(send.Pos(),
			"channel send may block ingest%s; use select-with-default or a channel "+
				"provably buffered at every make site", via)
		return true
	})
}

// Buffer facts: per channel variable/field, whether every visible binding is
// a buffered make.
const (
	bufUnknown = iota
	bufBuffered
	bufPoisoned // at least one binding is unbuffered or unprovable
)

type bufFacts struct {
	byObj map[types.Object]int // locals and package vars, unit-local identity
	byKey map[string]int       // struct fields, keyed "pkgpath.Type.field"
}

func (f *bufFacts) merge(obj types.Object, key string, state int) {
	if obj != nil {
		f.byObj[obj] = mergeState(f.byObj[obj], state)
	}
	if key != "" {
		f.byKey[key] = mergeState(f.byKey[key], state)
	}
}

func mergeState(old, new int) int {
	if old == bufPoisoned || new == bufPoisoned {
		return bufPoisoned
	}
	if old == bufBuffered || new == bufBuffered {
		return bufBuffered
	}
	return bufUnknown
}

func (f *bufFacts) provablyBuffered(ch ast.Expr, u *analysis.Unit, info *types.Info) bool {
	obj, key := chanBinding(ch, u, info)
	if obj != nil {
		return f.byObj[obj] == bufBuffered
	}
	if key != "" {
		return f.byKey[key] == bufBuffered
	}
	return false
}

// chanBinding resolves a channel expression to its tracked binding: a local
// or package variable (object identity) or a struct field (string key).
func chanBinding(ch ast.Expr, u *analysis.Unit, info *types.Info) (types.Object, string) {
	switch e := ast.Unparen(ch).(type) {
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if obj == nil {
			return nil, ""
		}
		return obj, ""
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return nil, fieldKey(sel.Recv(), e.Sel.Name)
		}
	}
	return nil, ""
}

// fieldKey names a struct field stably across units: "pkgpath.Type.field".
func fieldKey(recv types.Type, field string) string {
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	return pkg + "." + obj.Name() + "." + field
}

// collectBufferFacts scans every unit for channel bindings: assignments and
// composite-literal fields. make(chan T, n) with constant n > 0 proves a
// binding buffered; any other channel-valued binding poisons it.
func collectBufferFacts(units []*analysis.Unit) *bufFacts {
	facts := &bufFacts{byObj: make(map[types.Object]int), byKey: make(map[string]int)}
	for _, u := range units {
		info := u.TypesInfo
		for _, file := range u.Files {
			ast.Inspect(file, func(node ast.Node) bool {
				switch s := node.(type) {
				case *ast.AssignStmt:
					if len(s.Lhs) != len(s.Rhs) {
						// Multi-value assignment: poison any channel LHS.
						for _, lhs := range s.Lhs {
							recordBinding(facts, u, info, lhs, nil)
						}
						return true
					}
					for i := range s.Lhs {
						recordBinding(facts, u, info, s.Lhs[i], s.Rhs[i])
					}
				case *ast.ValueSpec:
					for i, name := range s.Names {
						if i < len(s.Values) {
							recordBinding(facts, u, info, name, s.Values[i])
						}
					}
				case *ast.CompositeLit:
					recordLitFields(facts, u, info, s)
				}
				return true
			})
		}
	}
	return facts
}

func recordBinding(facts *bufFacts, u *analysis.Unit, info *types.Info, lhs, rhs ast.Expr) {
	t := info.TypeOf(lhs)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Chan); !ok {
		return
	}
	obj, key := chanBinding(lhs, u, info)
	if obj == nil && key == "" {
		return
	}
	facts.merge(obj, key, classifyChanExpr(info, rhs))
}

func recordLitFields(facts *bufFacts, u *analysis.Unit, info *types.Info, lit *ast.CompositeLit) {
	t := info.TypeOf(lit)
	if t == nil {
		return
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		keyIdent, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		ft := info.TypeOf(kv.Value)
		if ft == nil {
			continue
		}
		if _, ok := ft.Underlying().(*types.Chan); !ok {
			continue
		}
		facts.merge(nil, fieldKey(named, keyIdent.Name), classifyChanExpr(info, kv.Value))
	}
}

// classifyChanExpr grades a channel-producing expression: buffered make,
// or anything weaker (nil poisons conservatively only when it is a real
// rebinding — untyped nil zeroes are ignored by the caller's type check).
func classifyChanExpr(info *types.Info, rhs ast.Expr) int {
	if rhs == nil {
		return bufPoisoned
	}
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return bufPoisoned
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return bufPoisoned
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
		return bufPoisoned
	}
	if len(call.Args) < 2 {
		return bufPoisoned // make(chan T): unbuffered
	}
	tv, ok := info.Types[call.Args[1]]
	if !ok || tv.Value == nil {
		return bufPoisoned // non-constant capacity
	}
	if n, ok := constant.Int64Val(constant.ToInt(tv.Value)); ok && n > 0 {
		return bufBuffered
	}
	return bufPoisoned
}
