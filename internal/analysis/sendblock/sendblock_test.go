package sendblock_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/sendblock"
)

func TestSendBlock(t *testing.T) {
	analysistest.RunModule(t, "testdata", sendblock.Analyzer, "ingester")
}
