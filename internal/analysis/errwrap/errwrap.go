// Package errwrap enforces error-chain discipline.
//
// Two checks:
//
//  1. Everywhere: a fmt.Errorf whose arguments include an error but whose
//     format string has no %w severs the chain — errors.Is/As downstream
//     (e.g. the uplink's ErrRejected routing, which decides redial-vs-retry)
//     silently stop matching. Wrap with %w.
//
//  2. In the durability/recovery packages (internal/uplink,
//     internal/relstore, internal/historian, internal/proto,
//     internal/journal, internal/serving): a call whose result list includes
//     an error, used as a bare statement, drops that error invisibly — a
//     failed sync or truncate in a recovery path then "succeeds". This
//     includes a bare errors.Join, which swallows every joined failure at
//     once. Handle the error, or discard it explicitly with `_ =` (the
//     visible idiom for best-effort cleanup).
package errwrap

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the errwrap check.
var Analyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc: "forbid fmt.Errorf that swallows an error without %w, and silently " +
		"discarded error returns in recovery packages",
	Run: run,
}

// RecoveryPkgs names the packages (by final import-path segment) whose
// persistence/recovery paths must not drop errors on the floor.
var RecoveryPkgs = map[string]bool{
	"uplink":    true,
	"relstore":  true,
	"historian": true,
	"proto":     true,
	// journal is the PDME's write-ahead log: a dropped error between append
	// and ack breaks the durability guarantee outright.
	"journal": true,
	// serving reads the historian on the trend path and hands errors to HTTP
	// clients; a discarded error there silently serves an empty trend.
	"serving": true,
}

// ScopePrefixes extends the recovery discipline to whole subtrees by import
// path: the linter holds itself and the command mains to the rules it
// enforces on the rest of the repo.
var ScopePrefixes = []string{
	"repro/internal/analysis",
	"repro/cmd",
}

func inScope(importPath string) bool {
	if RecoveryPkgs[analysis.PathSegment(importPath)] {
		return true
	}
	for _, p := range ScopePrefixes {
		if analysis.UnderPath(importPath, p) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	recovery := inScope(pass.ImportPath)

	for _, file := range pass.Files {
		inTest := analysis.IsTestFile(pass.Fset, file.Pos())
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkErrorf(pass, errType, n)
			case *ast.ExprStmt:
				if recovery && !inTest {
					checkDiscard(pass, errType, n)
				}
			}
			return true
		})
	}
	return nil
}

// checkErrorf flags fmt.Errorf calls that receive an error operand but whose
// (constant) format string never wraps with %w.
func checkErrorf(pass *analysis.Pass, errType *types.Interface, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return // non-constant format: cannot reason about verbs
	}
	format := constant.StringVal(tv.Value)
	if strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		t := pass.TypesInfo.TypeOf(arg)
		if t != nil && types.Implements(t, errType) {
			pass.Reportf(arg.Pos(),
				"fmt.Errorf swallows an error operand without %%w; the chain breaks for errors.Is/As")
			return
		}
	}
}

// checkDiscard flags a bare-statement call whose results include an error.
// defer and go statements and explicit `_ =` discards are left alone, as are
// writes that cannot fail (methods on strings.Builder/bytes.Buffer, and
// fmt.Fprint* into one of those) and console prints (fmt.Print* and
// fmt.Fprint* into os.Stdout/os.Stderr), whose write error has nowhere
// better to go than the stream that just failed.
func checkDiscard(pass *analysis.Pass, errType *types.Interface, stmt *ast.ExprStmt) {
	call, ok := stmt.X.(*ast.CallExpr)
	if !ok {
		return
	}
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return // conversion or builtin
	}
	if infallibleWrite(pass, call) || consoleWrite(pass, call) {
		return
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Implements(res.At(i).Type(), errType) {
			pass.Reportf(call.Pos(),
				"call discards its error result in a recovery package; handle it or discard explicitly with _ =")
			return
		}
	}
}

// infallibleWrite reports whether call is a write into an in-memory buffer,
// whose error results are documented to always be nil.
func infallibleWrite(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if selection, ok := pass.TypesInfo.Selections[sel]; ok {
		return isMemBuffer(selection.Recv())
	}
	if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
		fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
		strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0 {
		return isMemBuffer(pass.TypesInfo.TypeOf(call.Args[0]))
	}
	return false
}

// consoleWrite reports whether call is a package-level fmt print to the
// process's own stdout or stderr.
func consoleWrite(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	switch fn.Name() {
	case "Print", "Printf", "Println":
		return true
	case "Fprint", "Fprintf", "Fprintln":
		if len(call.Args) == 0 {
			return false
		}
		dst, ok := call.Args[0].(*ast.SelectorExpr)
		if !ok {
			return false
		}
		v, ok := pass.TypesInfo.Uses[dst.Sel].(*types.Var)
		return ok && v.Pkg() != nil && v.Pkg().Path() == "os" &&
			(v.Name() == "Stdout" || v.Name() == "Stderr")
	}
	return false
}

func isMemBuffer(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	path, name := n.Obj().Pkg().Path(), n.Obj().Name()
	return (path == "strings" && name == "Builder") || (path == "bytes" && name == "Buffer")
}
