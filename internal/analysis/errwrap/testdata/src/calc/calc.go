// Package calc is a testdata stand-in for a non-recovery package: the
// Errorf %w check still applies everywhere, but bare-statement error
// discards are only enforced in recovery packages.
package calc

import (
	"fmt"
	"os"
)

func severed(err error) error {
	return fmt.Errorf("calc: %v", err) // want "swallows an error operand"
}

func discardOutsideRecovery(f *os.File) {
	f.Close() // not flagged: calc is not a recovery package
}
