// Package uplink is a testdata stand-in for a recovery package (the final
// import-path segment is what errwrap keys on for the discard check).
package uplink

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
)

// severed mirrors the finding class the analyzer exists for: %v flattens the
// error, so errors.Is/As downstream stop matching sentinel errors.
func severed(err error) error {
	return fmt.Errorf("uplink: recover spool: %v", err) // want "swallows an error operand"
}

func wrapped(err error) error {
	return fmt.Errorf("uplink: recover spool: %w", err)
}

func noErrorArgs(n int) error {
	return fmt.Errorf("uplink: %d torn records", n)
}

func nonConstFormat(format string, err error) error {
	return fmt.Errorf(format, err) // non-constant format: out of scope
}

// silentDiscard mirrors the real-world finding class fixed in
// internal/proto/wire.go: a teardown-path Close with its error dropped
// invisibly.
func silentDiscard(f *os.File) {
	f.Close() // want "discards its error result"
}

func explicitDiscard(f *os.File) {
	_ = f.Close() // the visible best-effort idiom is accepted
}

func deferredClose(f *os.File) error {
	defer f.Close() // defer is conventional cleanup, not flagged
	return nil
}

// infallible writers are exempt: strings.Builder and bytes.Buffer writes
// are documented to always return nil errors.
func infallible(name string) string {
	var b strings.Builder
	b.WriteString(name)
	fmt.Fprintf(&b, "%02x", 7)
	var buf bytes.Buffer
	buf.WriteByte('x')
	fmt.Fprintln(&buf, "y")
	return b.String() + buf.String()
}

// console prints are exempt: the write error of a diagnostic line has
// nowhere better to go than the stream that just failed.
func console(err error, f *os.File) {
	fmt.Println("uplink: replaying spool")
	fmt.Printf("uplink: %d records\n", 3)
	fmt.Fprintln(os.Stderr, "uplink:", err)
	fmt.Fprintf(os.Stdout, "uplink: done\n")
	fmt.Fprintln(f, "not a console") // want "discards its error result"
}

func allowedDiscard(f *os.File) {
	f.Sync() //lint:allow errwrap testdata exemplar of a tolerated fire-and-forget sync
}

// A bare errors.Join swallows every joined failure at once: the aggregate is
// itself an error, and dropping it on a teardown path hides all of them.
func joinSwallowed(a, b error) {
	errors.Join(a, b) // want "discards its error result"
}

func joinReturned(a, b error) error {
	return errors.Join(a, b)
}
