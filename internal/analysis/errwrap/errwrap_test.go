package errwrap_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/errwrap"
)

func TestErrWrap(t *testing.T) {
	analysistest.Run(t, "testdata", errwrap.Analyzer, "uplink", "calc")
}
