// Package floats exercises the floateq analyzer: exact float equality is
// reported, the sanctioned idioms (zero sentinels, NaN self-comparison) are
// not, and directives behave.
package floats

type reading struct {
	Belief float64
	Score  float32
}

func bad(a, b float64, r reading) bool {
	if a == b { // want "exact == on float operands"
		return true
	}
	if r.Score != 0.25 { // want "exact != on float operands"
		return false
	}
	return a != b // want "exact != on float operands"
}

func mixedConst(a float64) bool {
	return a == 0.3 // want "exact == on float operands"
}

// Exemptions: exact-zero sentinels, the NaN idiom, and non-floats.
func exempt(a, b float64, n, m int) bool {
	if a == 0 || b != 0.0 {
		return true
	}
	if a != a { // NaN test
		return false
	}
	return n == m
}

// allowedComparator mirrors the real-world finding class kept in
// internal/pdme and internal/fusion: sort tie-breaking needs a strict weak
// order, so the comparison stays exact under a reasoned directive.
func allowedComparator(a, b float64) bool {
	//lint:allow floateq comparator tie-break must stay a strict weak order
	if a != b {
		return a > b
	}
	return false
}

func trailingAllow(a, b float64) bool {
	return a == b //lint:allow floateq trailing directive covers its own line
}

func reasonless(a, b float64) bool {
	//lint:allow floateq
	return a == b // want "exact == on float operands" want-1 "carries no reason"
}

func unknownAnalyzer(a, b float64) bool {
	//lint:allow nosuchcheck the analyzer name is wrong
	return a == b // want "exact == on float operands" want-1 "unknown analyzer"
}

func unusedDirective(a, b float64) bool {
	//lint:allow floateq nothing on the next line violates floateq
	return a < b // want-1 "suppresses nothing here"
}
