// Test files are exempt from floateq: asserting bit-exact reproduction of
// the paper's numbers (E1–E4) is the point of the repo's tests.
package floats

func assertExact(got, want float64) bool {
	return got == want // no diagnostic: _test.go files may compare exactly
}
