// Package floateq flags == and != between floating-point operands.
//
// Belief masses, severity scores, and prognostic probabilities are all
// float64; exact equality on computed floats is order- and
// optimization-sensitive, which silently breaks the paper's reproduced
// numbers. Compare with a tolerance (math.Abs(a-b) <= eps) instead.
//
// Deliberate exemptions:
//   - comparison against an exact constant zero (a sentinel/guard idiom:
//     unset fields, "no mass" checks);
//   - x != x / x == x on the same expression (the NaN test idiom);
//   - _test.go files, where asserting bit-exact reproduction of E1–E4
//     numbers is the whole point.
//
// Sites that genuinely need exact comparison (e.g. sort tie-breaking, which
// requires a strict weak order that tolerances destroy) carry
// //lint:allow floateq <reason>.
package floateq

import (
	"bytes"
	"go/ast"
	"go/constant"
	"go/printer"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the floateq check.
var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc:  "forbid ==/!= on floating-point operands outside tolerance helpers",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.TypesInfo, be.X) && !isFloat(pass.TypesInfo, be.Y) {
				return true
			}
			if isZeroConst(pass.TypesInfo, be.X) || isZeroConst(pass.TypesInfo, be.Y) {
				return true
			}
			if sameExpr(pass.Fset, be.X, be.Y) {
				return true // x != x is the NaN test
			}
			pass.Reportf(be.OpPos,
				"exact %s on float operands; compare with a tolerance (math.Abs(a-b) <= eps)",
				be.Op)
			return true
		})
	}
	return nil
}

func isFloat(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isZeroConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	if tv.Value.Kind() != constant.Float && tv.Value.Kind() != constant.Int {
		return false
	}
	return constant.Sign(tv.Value) == 0
}

// sameExpr reports whether two expressions are syntactically identical,
// which is how the NaN idiom x != x appears.
func sameExpr(fset *token.FileSet, a, b ast.Expr) bool {
	var ba, bb bytes.Buffer
	if err := printer.Fprint(&ba, fset, a); err != nil {
		return false
	}
	if err := printer.Fprint(&bb, fset, b); err != nil {
		return false
	}
	return ba.String() == bb.String()
}
