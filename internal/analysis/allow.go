package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// AllowName is the pseudo-analyzer that polices the //lint:allow directives
// themselves: a directive with no reason, naming an unknown analyzer, or
// suppressing nothing is itself a finding, and cannot be suppressed.
const AllowName = "lintallow"

// allowPrefix introduces a suppression directive:
//
//	//lint:allow <analyzer> <reason...>
//
// The directive suppresses diagnostics from <analyzer> on the same source
// line, or — when the comment stands alone on its line — on the next source
// line. The reason is mandatory; mproslint reports reasonless or unused
// directives as lintallow findings.
const allowPrefix = "lint:allow"

// Allow is one parsed suppression directive.
type Allow struct {
	Analyzer string
	Reason   string
	// File and Line locate the code the directive covers (the directive's own
	// line for trailing comments, the following line for standalone ones).
	File string
	Line int
	// Pos is the directive's own position, for reporting directive problems.
	Pos token.Pos
	// Used is set by Filter when the directive suppresses at least one
	// diagnostic.
	Used bool
}

// ParseAllows extracts the //lint:allow directives from a file, returning
// malformed ones as lintallow diagnostics. known maps valid analyzer names.
func ParseAllows(fset *token.FileSet, file *ast.File, known map[string]bool) ([]*Allow, []Diagnostic) {
	var allows []*Allow
	var bad []Diagnostic
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//")
			if !ok {
				continue // /* */ comments cannot carry directives
			}
			text, ok = strings.CutPrefix(text, allowPrefix)
			if !ok {
				continue
			}
			fields := strings.Fields(text)
			pos := fset.Position(c.Slash)
			if len(fields) == 0 {
				bad = append(bad, Diagnostic{Pos: c.Slash,
					Message: "lint:allow needs an analyzer name and a reason"})
				continue
			}
			if !known[fields[0]] {
				bad = append(bad, Diagnostic{Pos: c.Slash,
					Message: "lint:allow names unknown analyzer " + strconvQuote(fields[0])})
				continue
			}
			if len(fields) < 2 {
				bad = append(bad, Diagnostic{Pos: c.Slash,
					Message: "lint:allow " + fields[0] + " carries no reason; say why the site is intentional"})
				continue
			}
			a := &Allow{
				Analyzer: fields[0],
				Reason:   strings.Join(fields[1:], " "),
				File:     pos.Filename,
				Line:     pos.Line,
				Pos:      c.Slash,
			}
			if standsAlone(fset, file, c) {
				a.Line = pos.Line + 1
			}
			allows = append(allows, a)
		}
	}
	return allows, bad
}

// standsAlone reports whether comment c occupies its source line by itself
// (no code before it), in which case the directive covers the next line.
func standsAlone(fset *token.FileSet, file *ast.File, c *ast.Comment) bool {
	line := fset.Position(c.Slash).Line
	alone := true
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil || !alone {
			return false
		}
		if n.Pos().IsValid() && n != file {
			if _, isComment := n.(*ast.Comment); !isComment {
				if _, isGroup := n.(*ast.CommentGroup); !isGroup {
					if fset.Position(n.Pos()).Line == line && n.Pos() < c.Slash {
						alone = false
					}
				}
			}
		}
		return alone
	})
	return alone
}

func strconvQuote(s string) string { return `"` + s + `"` }
