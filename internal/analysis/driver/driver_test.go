package driver_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicfield"
	"repro/internal/analysis/driver"
	"repro/internal/analysis/errwrap"
	"repro/internal/analysis/floateq"
	"repro/internal/analysis/goroleak"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/lockdiscipline"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/masscheck"
	"repro/internal/analysis/noclock"
	"repro/internal/analysis/sendblock"
	"repro/internal/analysis/snapshotparity"
	"repro/internal/analysis/waldiscipline"
)

var all = []*analysis.Analyzer{
	noclock.Analyzer,
	floateq.Analyzer,
	errwrap.Analyzer,
	masscheck.Analyzer,
	maporder.Analyzer,
	atomicfield.Analyzer,
	lockdiscipline.Analyzer,
	waldiscipline.Analyzer,
	snapshotparity.Analyzer,
	hotalloc.Analyzer,
	goroleak.Analyzer,
	sendblock.Analyzer,
}

// TestRepoIsClean is the clean-sweep guarantee: the whole module (test units
// included) must carry zero mproslint findings, and every //lint:allow must
// be reasoned and live. CI enforces the same via cmd/mproslint; this test
// keeps `go test ./...` sufficient locally.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	findings, err := driver.LoadAndRun("", []string{"repro/..."}, all)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestVetToolProtocol covers the argument dispatch for `go vet -vettool`.
func TestVetToolProtocol(t *testing.T) {
	if code, handled := driver.VetToolMain("mproslint", []string{"-flags"}, all); !handled || code != 0 {
		t.Errorf("-flags: handled=%v code=%d, want handled, 0", handled, code)
	}
	if _, handled := driver.VetToolMain("mproslint", []string{"./..."}, all); handled {
		t.Error("package patterns must fall through to standalone mode")
	}
	if _, handled := driver.VetToolMain("mproslint", nil, all); handled {
		t.Error("no args must fall through to usage")
	}
}
