package driver

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	Standard   bool
	ForTest    string
	Module     *struct {
		Path      string
		Main      bool
		GoVersion string
	}
}

// LoadAndRun loads the packages matching patterns (plus their in-package and
// external test units) with export data via `go list`, runs the analyzers
// over every unit belonging to the main module, and returns the surviving
// findings. dir is the working directory for go list ("" for the current).
func LoadAndRun(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]Finding, error) {
	return LoadAndRunOpts(dir, patterns, analyzers, Options{})
}

// LoadAndRunOpts is LoadAndRun with reporting options. All units are loaded
// and type-checked first, then the analyzers run — the interprocedural ones
// (Analyzer.RunModule) see every unit at once.
func LoadAndRunOpts(dir string, patterns []string, analyzers []*analysis.Analyzer, opts Options) ([]Finding, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	// An in-package test unit "p [p.test]" compiles p's GoFiles plus its
	// TestGoFiles, so when one exists the plain unit is a strict subset and
	// analyzing it again would duplicate every finding.
	augmented := make(map[string]bool)
	for _, p := range pkgs {
		if p.ForTest != "" && p.Name != "main" && !strings.HasSuffix(p.Name, "_test") {
			augmented[p.ForTest] = true
		}
	}

	fset := token.NewFileSet()
	var units []*analysis.Unit
	for _, p := range pkgs {
		if p.Standard || p.Module == nil || !p.Module.Main || len(p.GoFiles) == 0 {
			continue
		}
		if strings.HasSuffix(p.ImportPath, ".test") {
			continue // synthesized test main
		}
		if p.ForTest == "" && augmented[p.ImportPath] {
			continue
		}
		u, err := loadListUnit(fset, p, exports)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return AnalyzeModule(fset, units, analyzers, opts)
}

func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{
		"list", "-test", "-export", "-deps",
		"-json=Dir,ImportPath,Name,Export,GoFiles,ImportMap,Standard,ForTest,Module",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %w\n%s", err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPackage)
		if err := dec.Decode(p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decode go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

func loadListUnit(fset *token.FileSet, p *listPackage, exports map[string]string) (*analysis.Unit, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	}
	compilerImporter := importer.ForCompiler(fset, "gc", lookup)
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := p.ImportMap[importPath]; ok {
			importPath = mapped
		}
		return compilerImporter.Import(importPath)
	})

	conf := types.Config{Importer: imp}
	if p.Module != nil && p.Module.GoVersion != "" {
		conf.GoVersion = "go" + p.Module.GoVersion
	}
	info := NewTypesInfo()
	cleanPath := p.ImportPath
	if i := strings.Index(cleanPath, " ["); i >= 0 {
		cleanPath = cleanPath[:i]
	}
	pkg, err := conf.Check(cleanPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", p.ImportPath, err)
	}
	return &analysis.Unit{Files: files, Pkg: pkg, TypesInfo: info, ImportPath: cleanPath}, nil
}

// NewTypesInfo returns a types.Info with every map populated, as the
// analyzers expect.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// importerFunc adapts a function to types.Importer, exactly as unitchecker
// does.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
