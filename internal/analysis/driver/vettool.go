package driver

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"

	goast "go/ast"
)

// This file implements the `go vet -vettool` protocol, mirroring
// x/tools/go/analysis/unitchecker: the build system invokes the tool with
//
//	-V=full    print a version fingerprint for the build cache
//	-flags     describe tool flags (none) as JSON
//	foo.cfg    analyze the single compilation unit described by the JSON file
//
// so `go vet -vettool=$(pwd)/bin/mproslint ./...` runs the MPROS analyzers
// with go-supplied export data, one unit at a time, test units included.

// vetConfig is the JSON compilation-unit description written by cmd/go. The
// field set matches unitchecker.Config; unused fields are accepted and
// ignored by encoding/json.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// VetToolMain handles one vettool invocation if args match the protocol,
// returning true when it consumed the invocation (the caller should exit
// with the returned code).
func VetToolMain(progname string, args []string, analyzers []*analysis.Analyzer) (code int, handled bool) {
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			fmt.Printf("%s version devel buildID=%s\n", progname, selfID())
			return 0, true
		case args[0] == "-flags":
			fmt.Println("[]")
			return 0, true
		case strings.HasSuffix(args[0], ".cfg"):
			return runVetUnit(args[0], analyzers), true
		}
	}
	return 0, false
}

// selfID fingerprints the running executable so the go command's build cache
// invalidates vet results when the tool changes.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

func runVetUnit(cfgFile string, analyzers []*analysis.Analyzer) int {
	cfg, err := readVetConfig(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	// The go command requires the facts output file to exist even though the
	// MPROS analyzers exchange no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*goast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0 // the compiler will report it
			}
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	}
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, lookup)
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		return compilerImporter.Import(importPath)
	})

	conf := types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	info := NewTypesInfo()
	cleanPath := cfg.ImportPath
	if i := strings.Index(cleanPath, " ["); i >= 0 {
		cleanPath = cleanPath[:i]
	}
	pkg, err := conf.Check(cleanPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	findings, err := AnalyzeFiles(fset, files, pkg, info, cfg.ImportPath, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", f.Pos, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

func readVetConfig(filename string) (*vetConfig, error) {
	data, err := os.ReadFile(filename)
	if err != nil {
		return nil, err
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode vet config %s: %w", filename, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}
	return cfg, nil
}
