// Package driver runs MPROS analyzers over type-checked package units and
// applies the //lint:allow suppression discipline. It backs both mproslint
// invocation modes: standalone (go list -export loading, see golist.go) and
// `go vet -vettool` (unitchecker protocol, see vettool.go).
package driver

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Finding is one reportable diagnostic, attributed to its analyzer.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// AnalyzeFiles runs the analyzers over one type-checked unit and returns the
// findings that survive //lint:allow filtering, plus lintallow findings for
// malformed, unknown, reasonless, or unused directives. importPath should be
// the unit's build name; any " [pkg.test]" suffix is stripped before
// analyzers see it.
func AnalyzeFiles(fset *token.FileSet, files []*ast.File, pkg *types.Package,
	info *types.Info, importPath string, analyzers []*analysis.Analyzer) ([]Finding, error) {

	if i := strings.Index(importPath, " ["); i >= 0 {
		importPath = importPath[:i]
	}

	known := map[string]bool{analysis.AllowName: true}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var allows []*analysis.Allow
	var findings []Finding
	for _, f := range files {
		as, bad := analysis.ParseAllows(fset, f, known)
		allows = append(allows, as...)
		for _, d := range bad {
			findings = append(findings, Finding{
				Analyzer: analysis.AllowName,
				Pos:      fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
	}

	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			ImportPath: importPath,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			findings = append(findings, Finding{
				Analyzer: name,
				Pos:      fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, importPath, err)
		}
	}

	kept := findings[:0]
	for _, f := range findings {
		if f.Analyzer != analysis.AllowName && suppressed(allows, f) {
			continue
		}
		kept = append(kept, f)
	}
	findings = kept

	for _, a := range allows {
		if !a.Used {
			findings = append(findings, Finding{
				Analyzer: analysis.AllowName,
				Pos:      fset.Position(a.Pos),
				Message:  fmt.Sprintf("lint:allow %s suppresses nothing here; remove it", a.Analyzer),
			})
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

func suppressed(allows []*analysis.Allow, f Finding) bool {
	hit := false
	for _, a := range allows {
		if a.Analyzer == f.Analyzer && a.File == f.Pos.Filename && a.Line == f.Pos.Line {
			a.Used = true
			hit = true
		}
	}
	return hit
}
