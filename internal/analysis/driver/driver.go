// Package driver runs MPROS analyzers over type-checked package units and
// applies the //lint:allow suppression discipline. It backs both mproslint
// invocation modes: standalone (go list -export loading, see golist.go) and
// `go vet -vettool` (unitchecker protocol, see vettool.go).
//
// Intraprocedural analyzers (Analyzer.Run) execute once per unit in both
// modes. Interprocedural analyzers (Analyzer.RunModule — the call-graph
// layer) need every unit of the module at once, so they execute only in
// standalone mode, after all units are loaded.
package driver

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Finding is one reportable diagnostic, attributed to its analyzer.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Suppressed marks a finding silenced by a reasoned //lint:allow. Default
	// runs drop suppressed findings; Options.IncludeSuppressed keeps them for
	// machine-readable output.
	Suppressed bool
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Options adjusts how findings are reported.
type Options struct {
	// IncludeSuppressed keeps //lint:allow-suppressed findings in the result
	// (marked Suppressed: true) instead of dropping them.
	IncludeSuppressed bool
}

// AnalyzeFiles runs the intraprocedural analyzers over one type-checked unit
// and returns the findings that survive //lint:allow filtering, plus
// lintallow findings for malformed, unknown, reasonless, or unused
// directives. importPath should be the unit's build name; any " [pkg.test]"
// suffix is stripped before analyzers see it. Module analyzers are skipped —
// they need every unit at once (see AnalyzeModule).
func AnalyzeFiles(fset *token.FileSet, files []*ast.File, pkg *types.Package,
	info *types.Info, importPath string, analyzers []*analysis.Analyzer) ([]Finding, error) {

	unit := &analysis.Unit{Files: files, Pkg: pkg, TypesInfo: info, ImportPath: cleanImportPath(importPath)}
	return AnalyzeModule(fset, []*analysis.Unit{unit}, onlyUnitAnalyzers(analyzers), Options{})
}

// AnalyzeModule runs all analyzers — per-unit ones over each unit,
// interprocedural ones once over the whole set — and applies the //lint:allow
// discipline across every unit's files.
func AnalyzeModule(fset *token.FileSet, units []*analysis.Unit,
	analyzers []*analysis.Analyzer, opts Options) ([]Finding, error) {

	known := map[string]bool{analysis.AllowName: true}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var allows []*analysis.Allow
	var findings []Finding
	for _, u := range units {
		for _, f := range u.Files {
			as, bad := analysis.ParseAllows(fset, f, known)
			allows = append(allows, as...)
			for _, d := range bad {
				findings = append(findings, Finding{
					Analyzer: analysis.AllowName,
					Pos:      fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
		}
	}

	for _, a := range analyzers {
		name := a.Name
		report := func(dst *[]Finding) func(analysis.Diagnostic) {
			return func(d analysis.Diagnostic) {
				*dst = append(*dst, Finding{
					Analyzer: name,
					Pos:      fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
		}
		switch {
		case a.Run != nil:
			for _, u := range units {
				pass := &analysis.Pass{
					Analyzer:   a,
					Fset:       fset,
					Files:      u.Files,
					Pkg:        u.Pkg,
					TypesInfo:  u.TypesInfo,
					ImportPath: u.ImportPath,
					Report:     report(&findings),
				}
				if err := a.Run(pass); err != nil {
					return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, u.ImportPath, err)
				}
			}
		case a.RunModule != nil:
			pass := &analysis.ModulePass{
				Analyzer: a,
				Fset:     fset,
				Units:    units,
				Report:   report(&findings),
			}
			if err := a.RunModule(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
			}
		default:
			return nil, fmt.Errorf("analyzer %s has neither Run nor RunModule", a.Name)
		}
	}

	kept := findings[:0]
	for _, f := range findings {
		if f.Analyzer != analysis.AllowName && suppressed(allows, f) {
			if !opts.IncludeSuppressed {
				continue
			}
			f.Suppressed = true
		}
		kept = append(kept, f)
	}
	findings = kept

	for _, a := range allows {
		if !a.Used {
			findings = append(findings, Finding{
				Analyzer: analysis.AllowName,
				Pos:      fset.Position(a.Pos),
				Message:  fmt.Sprintf("lint:allow %s suppresses nothing here; remove it", a.Analyzer),
			})
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// onlyUnitAnalyzers filters to the analyzers that can run on a single unit.
func onlyUnitAnalyzers(analyzers []*analysis.Analyzer) []*analysis.Analyzer {
	out := make([]*analysis.Analyzer, 0, len(analyzers))
	for _, a := range analyzers {
		if a.Run != nil {
			out = append(out, a)
		}
	}
	return out
}

func cleanImportPath(importPath string) string {
	if i := strings.Index(importPath, " ["); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

func suppressed(allows []*analysis.Allow, f Finding) bool {
	hit := false
	for _, a := range allows {
		if a.Analyzer == f.Analyzer && a.File == f.Pos.Filename && a.Line == f.Pos.Line {
			a.Used = true
			hit = true
		}
	}
	return hit
}
