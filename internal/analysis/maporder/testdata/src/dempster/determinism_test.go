// Test files are outside maporder's scope: a test may range a map freely
// (assertion helpers sort or compare as sets), so this raw range is not a
// finding.
package dempster

func sumForTest(m map[uint64]float64) float64 {
	var t float64
	for _, v := range m {
		t += v
	}
	return t
}
