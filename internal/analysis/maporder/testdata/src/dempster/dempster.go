// Package dempster is a testdata stand-in for a determinism-critical
// package (maporder keys on the final import-path segment).
package dempster

import "sort"

// Mass mirrors the real dempster.Mass shape: a map guarded by a sorted
// accessor.
type Mass struct {
	m map[uint64]float64
}

// FocalSets is the sanctioned idiom: the one raw map range, feeding a sort
// before anything observable happens.
func (m *Mass) FocalSets() []uint64 {
	keys := make([]uint64, 0, len(m.m))
	//lint:allow maporder keys are sorted before return, so iteration order cannot leak
	for k := range m.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Sum accumulates floats in map order: the finding class this analyzer
// exists for (float addition is not associative).
func (m *Mass) Sum() float64 {
	var total float64
	for _, v := range m.m { // want "direct range over a map"
		total += v
	}
	return total
}

// SumSorted iterates through the accessor: clean.
func (m *Mass) SumSorted() float64 {
	var total float64
	for _, k := range m.FocalSets() {
		total += m.m[k]
	}
	return total
}

// weights shows that named map types are still maps underneath.
type weights map[string]float64

func scale(w weights) {
	for k := range w { // want "direct range over a map"
		w[k] *= 2
	}
}

// Slice iteration has a fixed order; not flagged.
func sums(xs []float64) float64 {
	var t float64
	for _, x := range xs {
		t += x
	}
	return t
}
