// Package chiller is outside the determinism scope: raw map ranges are not
// findings here (the segment gate is under test).
package chiller

func names(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
