// Package maporder bans direct `range` over map values in the
// determinism-critical packages.
//
// Go randomizes map iteration order on purpose, and float addition is not
// associative — so any map-ordered loop that accumulates, combines, or emits
// fused values makes Ranked/Belief output depend on the scheduler. PR 6's
// cache-coherence guarantee (a serving-tier hit is bit-identical to a fresh
// fuse) and PR 7's crash-recovery guarantee (recovered state reproduces
// Ranked/Belief bit-for-bit) both rest on every such loop running in a fixed
// order. The fix that established the invariant routes iteration through a
// sorted-key accessor — dempster.Mass.FocalSets() is the model — and this
// analyzer keeps refactors from quietly reintroducing `for k := range m`.
//
// Scope: non-test files of the packages whose outputs must be bit-
// reproducible (dempster, fusion, pdme, serving, oosm). Loops whose order
// provably cannot matter (per-key scaling, map copies, feeding a
// sort-before-use collection) are suppressed case by case with a reasoned
// //lint:allow maporder — the reason documents *why* order cannot leak out,
// which is exactly the review question a new map loop should answer.
package maporder

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the maporder check.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "forbid direct range over maps in determinism-critical packages; " +
		"iterate a sorted-key accessor (like FocalSets) instead",
	Run: run,
}

// DeterminismPkgs names the packages (by final import-path segment) whose
// outputs must be bit-reproducible regardless of map iteration order: the
// Dempster-Shafer calculus, the fusion layers over it, the PDME that
// serves their conclusions, the read-side cache that must match them
// bit-for-bit, and the OOSM event model that drives fusion ordering.
var DeterminismPkgs = map[string]bool{
	"dempster": true,
	"fusion":   true,
	"pdme":     true,
	"serving":  true,
	"oosm":     true,
	// shard: aggregator global rankings and coverage reports must not vary
	// with map iteration over per-shard or per-pair state.
	"shard": true,
}

func run(pass *analysis.Pass) error {
	if !DeterminismPkgs[analysis.PathSegment(pass.ImportPath)] {
		return nil
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			pass.Reportf(rng.Pos(),
				"direct range over a map in determinism-critical package %s; "+
					"iterate a sorted-key accessor (like FocalSets) or justify why order cannot leak",
				analysis.PathSegment(pass.ImportPath))
			return true
		})
	}
	return nil
}
