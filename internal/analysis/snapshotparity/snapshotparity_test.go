package snapshotparity_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/snapshotparity"
)

func TestSnapshotParity(t *testing.T) {
	analysistest.Run(t, "testdata", snapshotparity.Analyzer, "health")
}
