// Package health is a testdata stand-in for a checkpointed package
// (snapshotparity keys on the final import-path segment).
package health

import "sync"

// State is the wire form of Registry.
type State struct {
	Watermark int64
	Version   int
	Gauge     float64
}

// Registry mixes snapshotted state, drifted fields, and config.
type Registry struct {
	mu        sync.Mutex // mutexes are exempt: lock state is never checkpointed
	watermark int64
	version   int     // want "captured by Snapshot but never rebuilt by Restore"
	gauge     float64 // want "rebuilt by Restore but never captured by Snapshot"
	missing   string  // want "captured by neither Snapshot nor Restore"
	cfg       int     //lint:allow snapshotparity construction-time config rebuilt from flags, not the checkpoint
}

func (r *Registry) Snapshot() State {
	r.mu.Lock()
	defer r.mu.Unlock()
	return State{Watermark: r.watermark, Version: r.version}
}

func (r *Registry) Restore(s State) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.watermark = s.Watermark
	r.gauge = s.Gauge
}

// A lone Restore without a snapshot counterpart is not a checkpoint pair.
type replayCursor struct {
	offset int64
}

func (c *replayCursor) Restore(off int64) { c.offset = off }
