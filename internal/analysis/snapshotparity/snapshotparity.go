// Package snapshotparity detects checkpoint drift: a field added to a live
// struct but not to its durable snapshot.
//
// The PDME's crash recovery (PR 7) snapshots derived state through
// Snapshot/State/ExportState methods and rebuilds it through
// Restore/RestoreState. The failure mode this analyzer exists for: someone
// adds a field to health.Registry (or fusion.DiagnosticFuser, or
// proto.Dedup), every test of the live path passes, and the field silently
// vanishes across a crash — the kill-9 chaos suite only notices if the
// field happens to perturb Ranked/Belief in the scenario it runs.
//
// The check: in the checkpointed packages (fusion, health, proto), for each
// struct type carrying both a snapshot method (Snapshot, State, or
// ExportState) and a restore method (Restore or RestoreState), every field
// of the live struct must be referenced in the snapshot method's body and
// in the restore method's body. Mutexes (sync.Mutex/sync.RWMutex) are
// exempt by construction. Fields that are genuinely configuration rather
// than state — thresholds from flags, capacities fixed at construction,
// runtime wiring like a Discounter — carry a reasoned //lint:allow
// snapshotparity on their declaration line, which doubles as the
// documentation for why the field deliberately does not survive a crash.
//
// The reference check is direct (a selector on the receiver inside the
// method body); state funneled through a helper should be referenced in the
// snapshot/restore method itself, which the existing snapshots all do.
package snapshotparity

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the snapshotparity check.
var Analyzer = &analysis.Analyzer{
	Name: "snapshotparity",
	Doc: "every field of a checkpointed struct must be captured by its " +
		"snapshot method and rebuilt by its restore method",
	Run: run,
}

// CheckpointPkgs names the packages (by final import-path segment) whose
// Snapshot/Restore pairs feed the PDME's durable checkpoint.
var CheckpointPkgs = map[string]bool{
	"fusion": true,
	"health": true,
	"proto":  true,
}

// snapshotNames and restoreNames identify the method pair the check keys on.
var (
	snapshotNames = map[string]bool{"Snapshot": true, "State": true, "ExportState": true}
	restoreNames  = map[string]bool{"Restore": true, "RestoreState": true}
)

func run(pass *analysis.Pass) error {
	if !CheckpointPkgs[analysis.PathSegment(pass.ImportPath)] {
		return nil
	}

	// Collect snapshot/restore methods by receiver named type.
	type pair struct {
		snapshot *ast.FuncDecl
		restore  *ast.FuncDecl
	}
	pairs := make(map[*types.TypeName]*pair)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			isSnap, isRest := snapshotNames[fd.Name.Name], restoreNames[fd.Name.Name]
			if !isSnap && !isRest {
				continue
			}
			tn := receiverTypeName(pass, fd)
			if tn == nil {
				continue
			}
			p, ok := pairs[tn]
			if !ok {
				p = &pair{}
				pairs[tn] = p
			}
			if isSnap {
				p.snapshot = fd
			} else {
				p.restore = fd
			}
		}
	}

	for tn, p := range pairs {
		if p.snapshot == nil || p.restore == nil {
			continue // not a checkpoint pair (e.g. a lone Restore helper)
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		snapRefs := fieldRefs(pass, p.snapshot.Body)
		restRefs := fieldRefs(pass, p.restore.Body)
		// Report at the field's declaration so the //lint:allow lands where
		// the field (and the reason it is config-not-state) is declared.
		for decl := range fieldDecls(pass, tn) {
			obj, ident := decl.obj, decl.ident
			if isMutex(obj.Type()) {
				continue
			}
			inSnap, inRest := snapRefs[obj], restRefs[obj]
			switch {
			case !inSnap && !inRest:
				pass.Reportf(ident.Pos(),
					"field %s of %s is captured by neither %s nor %s: it will not survive a crash-recovery "+
						"(checkpoint drift); snapshot it or declare it config with //lint:allow snapshotparity",
					obj.Name(), tn.Name(), p.snapshot.Name.Name, p.restore.Name.Name)
			case !inSnap:
				pass.Reportf(ident.Pos(),
					"field %s of %s is rebuilt by %s but never captured by %s (checkpoint drift)",
					obj.Name(), tn.Name(), p.restore.Name.Name, p.snapshot.Name.Name)
			case !inRest:
				pass.Reportf(ident.Pos(),
					"field %s of %s is captured by %s but never rebuilt by %s (checkpoint drift)",
					obj.Name(), tn.Name(), p.snapshot.Name.Name, p.restore.Name.Name)
			}
		}
		_ = st
	}
	return nil
}

// receiverTypeName resolves a method's receiver to its named type, through
// a pointer if present.
func receiverTypeName(pass *analysis.Pass, fd *ast.FuncDecl) *types.TypeName {
	if len(fd.Recv.List) == 0 {
		return nil
	}
	t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named.Obj()
}

// fieldDecl pairs a field's type object with its declaring identifier (for
// position and //lint:allow line targeting).
type fieldDecl struct {
	obj   *types.Var
	ident *ast.Ident
}

// fieldDecls yields the struct's field declarations from the AST of the
// pass's own files (the receiver type is always declared in-package).
func fieldDecls(pass *analysis.Pass, tn *types.TypeName) map[fieldDecl]bool {
	out := make(map[fieldDecl]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || pass.TypesInfo.Defs[ts.Name] != tn {
				return true
			}
			stAST, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range stAST.Fields.List {
				if len(f.Names) == 0 {
					// Embedded field: its identifier is the type expression.
					if id := embeddedIdent(f.Type); id != nil {
						if v, ok := pass.TypesInfo.Implicits[f].(*types.Var); ok {
							out[fieldDecl{obj: v, ident: id}] = true
						}
					}
					continue
				}
				for _, name := range f.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						out[fieldDecl{obj: v, ident: name}] = true
					}
				}
			}
			return true
		})
	}
	return out
}

func embeddedIdent(e ast.Expr) *ast.Ident {
	switch e := e.(type) {
	case *ast.Ident:
		return e
	case *ast.StarExpr:
		return embeddedIdent(e.X)
	case *ast.SelectorExpr:
		return e.Sel
	}
	return nil
}

// fieldRefs collects every struct field object referenced (read or written)
// in a method body.
func fieldRefs(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	refs := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if selection, ok := pass.TypesInfo.Selections[sel]; ok {
			if v, ok := selection.Obj().(*types.Var); ok && v.IsField() {
				refs[v] = true
			}
		}
		return true
	})
	return refs
}

// isMutex reports whether t is sync.Mutex or sync.RWMutex (exempt: lock
// state is never checkpointed).
func isMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}
