// Package pipeline is a testdata stand-in for a non-deterministic package:
// noclock must stay silent here.
package pipeline

import (
	"math/rand"
	"time"
)

func timed() (time.Time, float64) {
	time.Sleep(time.Microsecond)
	return time.Now(), rand.Float64()
}
