// Package chiller is a testdata stand-in for a deterministic MPROS package
// (the final import-path segment is what noclock keys on).
package chiller

import (
	"math/rand"
	"time"
)

// clock mirrors the real-world finding class fixed in internal/experiments:
// a package-level wall-clock hook. Unlike there, this one carries no allow,
// so it must be reported.
var clock = time.Now // want "time.Now in deterministic package chiller"

func bad() time.Duration {
	start := time.Now()          // want "time.Now in deterministic package chiller"
	time.Sleep(time.Millisecond) // want "time.Sleep in deterministic package chiller"
	if rand.Float64() > 0.5 {    // want "global rand.Float64 in deterministic package chiller"
		rand.Shuffle(2, func(i, j int) {}) // want "global rand.Shuffle in deterministic package chiller"
	}
	return time.Since(start) // want "time.Since in deterministic package chiller"
}

// good shows the required idiom: seeded generators and injected instants.
func good(seed int64, now func() time.Time) float64 {
	rng := rand.New(rand.NewSource(seed))
	_ = now().Add(time.Second) // Duration arithmetic stays legal
	return rng.Float64()       // methods on a seeded *rand.Rand stay legal
}

// allowed exercises the suppression path: a standalone directive covers the
// next line, and must carry a reason.
func allowed() time.Time {
	//lint:allow noclock testdata exemplar of an intentional wall-clock read
	return time.Now()
}
