package noclock_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/noclock"
)

func TestNoClock(t *testing.T) {
	analysistest.Run(t, "testdata", noclock.Analyzer, "chiller", "pipeline")
}
