// Package noclock bans ambient wall-clock and global-randomness access in
// MPROS's deterministic packages.
//
// E1/E2 reproduce the paper's Dempster-Shafer and prognostic-fusion numbers
// exactly, and E3/E4 demand bit-identical SBFR machine behaviour; a stray
// time.Now or a global-source rand call in those paths compiles fine and only
// fails probabilistically. Simulation and algorithm packages must take ticks,
// an injected clock func, or a seeded *rand.Rand instead.
package noclock

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the noclock check.
var Analyzer = &analysis.Analyzer{
	Name: "noclock",
	Doc: "forbid time.Now/time.Sleep and global math/rand in deterministic packages; " +
		"inject a clock or a seeded *rand.Rand",
	Run: run,
}

// DeterministicPkgs names the packages (by final import-path segment) whose
// outputs must be a pure function of their inputs and seeds.
var DeterministicPkgs = map[string]bool{
	"chiller":     true,
	"sbfr":        true,
	"dempster":    true,
	"dsp":         true,
	"wavelet":     true,
	"wnn":         true,
	"fuzzy":       true,
	"experiments": true,
	// health judges staleness against an injected clock or an event-time
	// watermark; reading the wall clock would make fused beliefs depend on
	// when a test runs.
	"health": true,
	// serving's cache validity must be judged by the health registry's clock
	// (injected or event-time), never the wall clock: the coherence property
	// (cached == fresh recompute, bit for bit) only holds if nothing in the
	// tier observes real time.
	"serving": true,
	// shard routing, failover, and aggregation must replay identically from
	// journals and seeds: ring placement, staleness discounting, and global
	// rankings all derive from event time and injected clocks, never the
	// wall clock.
	"shard": true,
}

// ScopePrefixes extends the clock discipline to whole subtrees by import
// path. Command mains and the analysis tree itself are in scope: a main that
// reads the wall clock must say why with a //lint:allow, and the analyzers
// must stay reproducible (a timestamp in a finding would break golden
// output).
var ScopePrefixes = []string{
	"repro/internal/analysis",
	"repro/cmd",
}

func inScope(importPath string) bool {
	if DeterministicPkgs[analysis.PathSegment(importPath)] {
		return true
	}
	for _, p := range ScopePrefixes {
		if analysis.UnderPath(importPath, p) {
			return true
		}
	}
	return false
}

// bannedTime lists the package-level time functions that read or wait on the
// wall clock. time.Duration arithmetic and constants stay legal.
var bannedTime = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// allowedRand lists the package-level math/rand constructors that produce
// explicitly seeded generators; every other package-level function draws from
// the process-global source.
var allowedRand = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.ImportPath) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if fn.Type().(*types.Signature).Recv() != nil {
				return true // methods (e.g. on a seeded *rand.Rand) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				if bannedTime[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"time.%s in deterministic package %s; inject a clock (pass ticks or a now func)",
						fn.Name(), analysis.PathSegment(pass.ImportPath))
				}
			case "math/rand", "math/rand/v2":
				if !allowedRand[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"global rand.%s in deterministic package %s; use a seeded *rand.Rand",
						fn.Name(), analysis.PathSegment(pass.ImportPath))
				}
			}
			return true
		})
	}
	return nil
}
