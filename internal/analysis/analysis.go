// Package analysis is a stdlib-only reimplementation of the core of
// golang.org/x/tools/go/analysis, sized for MPROS's own lint suite.
//
// The repo's invariants — deterministic simulation packages, tolerance-based
// float comparison, wrapped errors on recovery paths, unit-sum Dempster-Shafer
// masses — are enforced by analyzers built on this package and run by
// cmd/mproslint, either standalone (mproslint ./...) or as a `go vet
// -vettool`. The API deliberately mirrors x/tools so the analyzers could be
// ported to the upstream framework by changing imports only; the build
// environment for this repo is offline, so the framework itself lives here.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. An analyzer is either intraprocedural
// (Run, invoked once per package unit) or interprocedural (RunModule, invoked
// once with every type-checked unit of the module — the call-graph analyzers
// hotalloc, goroleak, and sendblock work this way). Exactly one of the two
// must be set. RunModule analyzers need the whole module in memory, so they
// execute in standalone mode (mproslint ./..., driver.LoadAndRun) only; the
// unit-at-a-time `go vet -vettool` protocol skips them.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:allow
	// directives. It must be a valid identifier.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package unit.
	Run func(*Pass) error
	// RunModule applies the analyzer to the whole module at once.
	RunModule func(*ModulePass) error
}

// Pass carries one package unit through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// ImportPath is the build system's name for the unit with any test-unit
	// suffix ("pkg [pkg.test]") stripped, e.g. "repro/internal/dempster".
	ImportPath string

	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Unit is one type-checked compilation unit of the module, as the driver
// loads it: a package (or its test-augmented variant) with files, type
// information, and the cleaned import path.
type Unit struct {
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
	ImportPath string
}

// ModulePass carries every loaded unit through one interprocedural analyzer.
// All units share one FileSet, so positions from any unit resolve uniformly.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Units    []*Unit

	// Report delivers one diagnostic to the driver, which attributes it to
	// the containing file for //lint:allow filtering.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Function annotations. A directive comment in a function's doc block marks
// it as a root for the interprocedural analyzers:
//
//	//mpros:hotpath   everything reachable from here must not heap-allocate
//	                  (hotalloc) and must not block on channel sends
//	                  (sendblock)
//	//mpros:ingest    everything reachable from here must not block on
//	                  channel sends (sendblock only — ingest paths may
//	                  allocate, they just may never wedge on a slow consumer)
const (
	AnnotationHotPath = "hotpath"
	AnnotationIngest  = "ingest"
)

// Annotations extracts the //mpros: directives from a doc comment group.
// Returns nil when there are none.
func Annotations(doc *ast.CommentGroup) map[string]bool {
	if doc == nil {
		return nil
	}
	var out map[string]bool
	for _, c := range doc.List {
		rest, ok := cutPrefix(c.Text, "//mpros:")
		if !ok {
			continue
		}
		name := rest
		for i := 0; i < len(rest); i++ {
			if rest[i] == ' ' || rest[i] == '\t' {
				name = rest[:i]
				break
			}
		}
		if name == "" {
			continue
		}
		if out == nil {
			out = make(map[string]bool, 1)
		}
		out[name] = true
	}
	return out
}

func cutPrefix(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return "", false
}

// PathSegment returns the last slash-separated segment of an import path —
// analyzers use it to recognize repo packages by name regardless of the
// module prefix.
func PathSegment(importPath string) string {
	for i := len(importPath) - 1; i >= 0; i-- {
		if importPath[i] == '/' {
			return importPath[i+1:]
		}
	}
	return importPath
}

// UnderPath reports whether importPath is prefix itself or a package in its
// subtree — the segment-independent way to scope an analyzer to a whole
// directory tree (e.g. everything under internal/analysis, however deep).
func UnderPath(importPath, prefix string) bool {
	if len(importPath) < len(prefix) || importPath[:len(prefix)] != prefix {
		return false
	}
	return len(importPath) == len(prefix) || importPath[len(prefix)] == '/'
}

// IsTestFile reports whether the file containing pos is a _test.go file.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	name := fset.Position(pos).Filename
	const suffix = "_test.go"
	return len(name) >= len(suffix) && name[len(name)-len(suffix):] == suffix
}
