// Package analysis is a stdlib-only reimplementation of the core of
// golang.org/x/tools/go/analysis, sized for MPROS's own lint suite.
//
// The repo's invariants — deterministic simulation packages, tolerance-based
// float comparison, wrapped errors on recovery paths, unit-sum Dempster-Shafer
// masses — are enforced by analyzers built on this package and run by
// cmd/mproslint, either standalone (mproslint ./...) or as a `go vet
// -vettool`. The API deliberately mirrors x/tools so the analyzers could be
// ported to the upstream framework by changing imports only; the build
// environment for this repo is offline, so the framework itself lives here.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:allow
	// directives. It must be a valid identifier.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package unit.
	Run func(*Pass) error
}

// Pass carries one package unit through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// ImportPath is the build system's name for the unit with any test-unit
	// suffix ("pkg [pkg.test]") stripped, e.g. "repro/internal/dempster".
	ImportPath string

	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// PathSegment returns the last slash-separated segment of an import path —
// analyzers use it to recognize repo packages by name regardless of the
// module prefix.
func PathSegment(importPath string) string {
	for i := len(importPath) - 1; i >= 0; i-- {
		if importPath[i] == '/' {
			return importPath[i+1:]
		}
	}
	return importPath
}

// IsTestFile reports whether the file containing pos is a _test.go file.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	name := fset.Position(pos).Filename
	const suffix = "_test.go"
	return len(name) >= len(suffix) && name[len(name)-len(suffix):] == suffix
}
