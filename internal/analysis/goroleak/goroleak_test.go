package goroleak_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/goroleak"
)

func TestGoroLeak(t *testing.T) {
	analysistest.RunModule(t, "testdata", goroleak.Analyzer, "serving", "freepkg")
}
