// Package freepkg is outside the long-lived scope; goroleak ignores it.
package freepkg

func Spawn() {
	go func() {
		for {
		}
	}()
}
