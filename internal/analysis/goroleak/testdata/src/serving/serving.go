package serving

import (
	"context"
	"sync"
)

type Server struct {
	wg   sync.WaitGroup
	stop chan struct{}
	jobs chan int
}

// StartJoined is proved by the WaitGroup: Done deferred in the body, Wait
// called in Close below.
func (s *Server) StartJoined(n int) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		spin(n)
	}()
}

func spin(n int) {
	for i := 0; i < n; i++ {
	}
}

// loop is proved by the struct{} done-channel receive.
func (s *Server) loop() {
	for {
		select {
		case <-s.stop:
			return
		case job := <-s.jobs:
			_ = job
		}
	}
}

func (s *Server) Close() {
	close(s.stop)
	s.wg.Wait()
}

// StartNamed spawns a named method whose body (chased through the call
// graph) receives from the done channel.
func (s *Server) StartNamed() {
	go s.loop()
}

// StartIndirect is proved two hops away: run calls loop.
func (s *Server) StartIndirect() {
	go s.run()
}

func (s *Server) run() { s.loop() }

// StartCtx is proved by the context cancellation select.
func StartCtx(ctx context.Context, ticks chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case t := <-ticks:
				_ = t
			}
		}
	}()
}

// StartRange exits when the producer closes the channel.
func StartRange(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

// StartCommaOk observes channel closure explicitly.
func StartCommaOk(ch chan int) {
	go func() {
		for {
			v, ok := <-ch
			if !ok {
				return
			}
			_ = v
		}
	}()
}

// Leak spins forever with no cancellation signal and no join.
func Leak() {
	go func() { // want "no provable shutdown path"
		for {
		}
	}()
}

// LeakNamed spawns a named function that never observes shutdown.
func LeakNamed() {
	go spinForever() // want "no provable shutdown path"
}

func spinForever() {
	for {
	}
}

// Allowed documents a deliberate fire-and-forget.
func Allowed() {
	//lint:allow goroleak one-shot best-effort warmup, exits on its own
	go func() {
		spin(1)
	}()
}
