// Package goroleak defines an interprocedural analyzer enforcing goroutine
// lifecycle discipline in the repo's long-lived packages: every `go`
// statement must have a provable shutdown path, because on an embedded CBM
// node the process runs for months and a leaked goroutine is a slow resource
// exhaustion, not a restart-cured hiccup.
//
// A `go` statement passes when the spawned body — chased transitively
// through statically resolvable callees in the module — contains one of:
//
//   - a receive from a context Done channel or a struct{}-typed done channel
//     (in a select or bare), the canonical cancellation signal
//   - a `for range` over a channel, which exits when the producer closes it
//   - a comma-ok receive, which observes channel closure
//
// or when the goroutine is WaitGroup-joined: the body defers
// (*sync.WaitGroup).Done and the package calls the matching Wait inside a
// shutdown-shaped function (Close, Stop, Shutdown, Wait, Drain, Flush, Join,
// or main). Anything else — a bare `go func() { for { ... } }()` — is a leak
// by construction and fails lint; genuinely fire-and-forget work takes a
// reasoned //lint:allow goroleak.
package goroleak

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

// Analyzer flags go statements without a provable shutdown path.
var Analyzer = &analysis.Analyzer{
	Name:      "goroleak",
	Doc:       "go statements in long-lived packages must have a provable shutdown path",
	RunModule: run,
}

// LongLivedPkgs names the packages (by final import-path segment) whose
// goroutines outlive a request: the fusion engine, the read-side serving
// tier, the store-and-forward uplink, and the durability/health machinery.
var LongLivedPkgs = map[string]bool{
	"pdme":      true,
	"serving":   true,
	"uplink":    true,
	"health":    true,
	"historian": true,
	"journal":   true,
	// shard: forwarders and routers own retired-uplink goroutines that must
	// join at Close, or every failover leaks a sender.
	"shard": true,
}

// shutdownFuncs are the function names accepted as a join point for
// WaitGroup-proved goroutines.
var shutdownFuncs = map[string]bool{
	"Close": true, "Stop": true, "Shutdown": true, "Wait": true,
	"Drain": true, "Flush": true, "Join": true, "main": true,
}

func run(pass *analysis.ModulePass) error {
	g := callgraph.Build(pass.Fset, pass.Units)
	for _, u := range pass.Units {
		if !LongLivedPkgs[analysis.PathSegment(u.ImportPath)] {
			continue
		}
		checkUnit(pass, g, u)
	}
	return nil
}

func checkUnit(pass *analysis.ModulePass, g *callgraph.Graph, u *analysis.Unit) {
	joined := packageHasJoin(u)
	for _, file := range u.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(node ast.Node) bool {
			gs, ok := node.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !hasShutdownPath(g, u, gs, joined) {
				pass.Reportf(gs.Pos(),
					"go statement in long-lived package %s has no provable shutdown path "+
						"(no done-channel receive, channel range, comma-ok receive, or WaitGroup "+
						"joined on a Close/Stop path)",
					analysis.PathSegment(u.ImportPath))
			}
			return true
		})
	}
}

// hasShutdownPath chases the spawned body transitively through module
// callees looking for a shutdown construct.
func hasShutdownPath(g *callgraph.Graph, u *analysis.Unit, gs *ast.GoStmt, joined bool) bool {
	visited := map[string]bool{}
	var bodies []ast.Node

	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		bodies = append(bodies, fun.Body)
		if joined && defersWaitGroupDone(fun.Body, u.TypesInfo) {
			return true
		}
	default:
		if fn := callgraph.StaticCallee(u.TypesInfo, gs.Call); fn != nil {
			if n := g.Node(fn); n != nil {
				visited[n.ID] = true
				bodies = append(bodies, n.Decl.Body)
				if joined && defersWaitGroupDone(n.Decl.Body, n.Unit.TypesInfo) {
					return true
				}
			}
		}
	}

	// Breadth-first over the bodies: scan for shutdown constructs, enqueue
	// statically resolvable callees with bodies in the module.
	info := u.TypesInfo
	for len(bodies) > 0 {
		body := bodies[0]
		bodies = bodies[1:]
		curInfo := info
		if n := nodeForBody(g, body); n != nil {
			curInfo = n.Unit.TypesInfo
		}
		if scanShutdown(body, curInfo) {
			return true
		}
		ast.Inspect(body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := callgraph.StaticCallee(curInfo, call)
			if fn == nil {
				return true
			}
			n := g.Node(fn)
			if n == nil || visited[n.ID] {
				return true
			}
			visited[n.ID] = true
			bodies = append(bodies, n.Decl.Body)
			return true
		})
	}
	return false
}

// nodeForBody maps a queued body back to its graph node so the right unit's
// type info is used. Bodies queued from FuncLits return nil and keep the
// spawning unit's info.
func nodeForBody(g *callgraph.Graph, body ast.Node) *callgraph.Node {
	for _, n := range g.Nodes { // small graphs; identity probe, order-free
		if n.Decl.Body == body {
			return n
		}
	}
	return nil
}

// scanShutdown looks for a shutdown construct directly in one body.
func scanShutdown(body ast.Node, info *types.Info) bool {
	found := false
	ast.Inspect(body, func(node ast.Node) bool {
		if found {
			return false
		}
		switch s := node.(type) {
		case *ast.RangeStmt:
			if _, ok := info.TypeOf(s.X).Underlying().(*types.Chan); ok {
				found = true
			}
		case *ast.AssignStmt:
			// v, ok := <-ch observes closure.
			if len(s.Lhs) == 2 && len(s.Rhs) == 1 {
				if u, ok := ast.Unparen(s.Rhs[0]).(*ast.UnaryExpr); ok && u.Op.String() == "<-" {
					found = true
				}
			}
		case *ast.UnaryExpr:
			if s.Op.String() == "<-" && isDoneChannel(s.X, info) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isDoneChannel reports whether expr is a cancellation signal: a call to a
// method named Done returning a receive channel (context.Context.Done and
// friends), or any channel of struct{} elements.
func isDoneChannel(expr ast.Expr, info *types.Info) bool {
	if call, ok := ast.Unparen(expr).(*ast.CallExpr); ok {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			return true
		}
	}
	t := info.TypeOf(expr)
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// defersWaitGroupDone reports whether the body defers (*sync.WaitGroup).Done.
func defersWaitGroupDone(body ast.Node, info *types.Info) bool {
	found := false
	ast.Inspect(body, func(node ast.Node) bool {
		if found {
			return false
		}
		d, ok := node.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if isWaitGroupCall(d.Call, info, "Done") {
			found = true
		}
		return !found
	})
	return found
}

// packageHasJoin reports whether the unit calls (*sync.WaitGroup).Wait inside
// a shutdown-shaped function.
func packageHasJoin(u *analysis.Unit) bool {
	for _, file := range u.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !shutdownFuncs[fd.Name.Name] {
				continue
			}
			found := false
			ast.Inspect(fd.Body, func(node ast.Node) bool {
				if call, ok := node.(*ast.CallExpr); ok && isWaitGroupCall(call, u.TypesInfo, "Wait") {
					found = true
				}
				return !found
			})
			if found {
				return true
			}
		}
	}
	return false
}

func isWaitGroupCall(call *ast.CallExpr, info *types.Info, method string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	return fn.FullName() == "(*sync.WaitGroup)."+method
}
