// Package lockdiscipline verifies that a mutex locked in a function is
// unlocked on every return path.
//
// The canonical bug is an early return added between Lock and Unlock:
//
//	mu.Lock()
//	if cond {
//		return err // mu never unlocked — every later caller deadlocks
//	}
//	mu.Unlock()
//
// In the PDME's accept path a leaked acceptMu freezes ingest fleet-wide; in
// the historian or journal it wedges checkpointing while deliveries pile up.
// These functions deliberately avoid defer on some hot paths (the unlock
// must happen before a blocking I/O or callback), which is exactly where a
// refactor's new early return silently skips the unlock.
//
// The check walks each function body in statement order, tracking which
// mutexes are held: Lock/RLock on a sync.Mutex/sync.RWMutex acquires,
// Unlock/RUnlock releases, and a deferred unlock releases for all paths
// from that point on. A return (or falling off the end of the function)
// while something is still held is a finding. Branches are analyzed with a
// copy of the held set, and the held set of branches that fall through is
// intersected — so only mutexes held on *every* continuation are carried
// forward, which keeps conditional unlock-then-return idioms clean. Closures
// are analyzed as their own scope. Intentional lock handoffs (a function
// documented to return holding the lock) carry a reasoned //lint:allow.
//
// Scope: the packages whose mutexes guard cross-goroutine ingest state —
// pdme, serving, historian, journal, uplink — test files included (a test
// helper that leaks a lock hangs the suite, not just production).
package lockdiscipline

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the lockdiscipline check.
var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc: "a mutex locked in a function must be unlocked on every return " +
		"path, deferred or explicit",
	Run: run,
}

// LockPkgs names the packages (by final import-path segment) under the
// discipline: the ingest-critical subsystems whose wedged mutex stalls the
// whole station.
var LockPkgs = map[string]bool{
	"pdme":      true,
	"serving":   true,
	"historian": true,
	"journal":   true,
	"uplink":    true,
	// shard: router failover and aggregator fan-in sit on the DC ingest
	// path; a wedged mutex there stalls every DC routed through it.
	"shard": true,
}

func run(pass *analysis.Pass) error {
	if !LockPkgs[analysis.PathSegment(pass.ImportPath)] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFunc(pass, n.Body)
				}
				return true
			case *ast.FuncLit:
				checkFunc(pass, n.Body)
				return true // nested literals are found by the same Inspect
			}
			return true
		})
	}
	return nil
}

// heldSet maps a mutex key ("p.mu", "v.mu/R") to the position of the Lock
// that acquired it.
type heldSet map[string]token.Pos

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// checkFunc analyzes one function (or closure) body. Closure bodies are
// skipped here and analyzed by their own checkFunc call from run.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	held, terminated := walkStmts(pass, body.List, make(heldSet))
	if terminated {
		return
	}
	for key, pos := range held {
		pass.Reportf(body.End()-1,
			"function exits while %s is still locked (Lock at %s); unlock it or defer the unlock",
			key, pass.Fset.Position(pos))
	}
}

// walkStmts walks a statement sequence, returning the held set at
// fall-through and whether the sequence always terminates (every path ends
// in return or panic) before falling through.
func walkStmts(pass *analysis.Pass, stmts []ast.Stmt, held heldSet) (heldSet, bool) {
	for _, s := range stmts {
		var terminated bool
		held, terminated = walkStmt(pass, s, held)
		if terminated {
			return held, true
		}
	}
	return held, false
}

func walkStmt(pass *analysis.Pass, s ast.Stmt, held heldSet) (heldSet, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if key, acquire, ok := lockCall(pass, s.X); ok {
			if acquire {
				held[key] = s.Pos()
			} else {
				delete(held, key)
			}
		}
		if isPanic(pass, s.X) {
			return held, true
		}
	case *ast.DeferStmt:
		// A deferred unlock releases the mutex on every path from here on.
		if key, acquire, ok := lockCall(pass, s.Call); ok && !acquire {
			delete(held, key)
		}
		// defer func() { ...; mu.Unlock(); ... }() releases too.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if e, ok := n.(ast.Expr); ok {
					if key, acquire, ok := lockCall(pass, e); ok && !acquire {
						delete(held, key)
					}
				}
				return true
			})
		}
	case *ast.ReturnStmt:
		for key, pos := range held {
			pass.Reportf(s.Pos(),
				"return while %s is still locked (Lock at %s); unlock before returning or defer the unlock",
				key, pass.Fset.Position(pos))
		}
		return held, true
	case *ast.BlockStmt:
		return walkStmts(pass, s.List, held)
	case *ast.LabeledStmt:
		return walkStmt(pass, s.Stmt, held)
	case *ast.IfStmt:
		thenHeld, thenTerm := walkStmts(pass, s.Body.List, held.clone())
		elseHeld, elseTerm := held, false
		if s.Else != nil {
			elseHeld, elseTerm = walkStmt(pass, s.Else, held.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseHeld, false
		case elseTerm:
			return thenHeld, false
		default:
			return intersect(thenHeld, elseHeld), false
		}
	case *ast.ForStmt:
		walkStmts(pass, s.Body.List, held.clone())
	case *ast.RangeStmt:
		walkStmts(pass, s.Body.List, held.clone())
	case *ast.SwitchStmt:
		walkClauses(pass, s.Body, held)
	case *ast.TypeSwitchStmt:
		walkClauses(pass, s.Body, held)
	case *ast.SelectStmt:
		walkClauses(pass, s.Body, held)
	}
	return held, false
}

// walkClauses analyzes each case body with its own copy of the held set;
// the continuation conservatively keeps the pre-switch state.
func walkClauses(pass *analysis.Pass, body *ast.BlockStmt, held heldSet) {
	for _, c := range body.List {
		switch c := c.(type) {
		case *ast.CaseClause:
			walkStmts(pass, c.Body, held.clone())
		case *ast.CommClause:
			walkStmts(pass, c.Body, held.clone())
		}
	}
}

func intersect(a, b heldSet) heldSet {
	out := make(heldSet)
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}

// lockCall recognizes x.Lock()/x.RLock() (acquire=true) and
// x.Unlock()/x.RUnlock() (acquire=false) on sync.Mutex/sync.RWMutex values,
// returning a key identifying the mutex (expression text, "/R" suffix for
// the read side).
func lockCall(pass *analysis.Pass, e ast.Expr) (key string, acquire, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return "", false, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	var read bool
	switch sel.Sel.Name {
	case "Lock", "Unlock":
	case "RLock", "RUnlock":
		read = true
	default:
		return "", false, false
	}
	fn, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	key = exprString(pass.Fset, sel.X)
	if read {
		key += "/R"
	}
	return key, sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock", true
}

// isPanic reports whether e is a call to the panic builtin (a terminating
// statement, like return).
func isPanic(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var b bytes.Buffer
	if err := printer.Fprint(&b, fset, e); err != nil {
		return "?"
	}
	return b.String()
}
