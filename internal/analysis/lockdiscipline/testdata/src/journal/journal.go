// Package journal is a testdata stand-in for an ingest-critical package
// under the lock discipline (the segment gate keys on the import path).
package journal

import (
	"errors"
	"sync"
)

var errFail = errors.New("fail")

type spool struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	data []byte
}

// leakyReturn is the canonical bug: an early return added between Lock and
// Unlock.
func (s *spool) leakyReturn(fail bool) error {
	s.mu.Lock()
	if fail {
		return errFail // want "return while s.mu is still locked"
	}
	s.mu.Unlock()
	return nil
}

// leakyFallOff never unlocks at all.
func (s *spool) leakyFallOff() {
	s.mu.Lock()
	s.data = nil
} // want "exits while s.mu is still locked"

// A deferred unlock covers every path.
func (s *spool) deferred(fail bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fail {
		return errFail
	}
	return nil
}

// Explicit unlock before each return is accepted (the hot-path idiom).
func (s *spool) explicit(fail bool) error {
	s.mu.Lock()
	if fail {
		s.mu.Unlock()
		return errFail
	}
	s.mu.Unlock()
	return nil
}

// Both branches unlock, then fall through: the intersect keeps it clean.
func (s *spool) branchy(fast bool) {
	s.mu.Lock()
	if fast {
		s.mu.Unlock()
	} else {
		s.mu.Unlock()
	}
	s.data = nil
}

// The read side is tracked separately from the write side.
func (s *spool) leakyRead() int {
	s.rw.RLock()
	return len(s.data) // want "return while s.rw/R is still locked"
}

// A closure is its own scope: leaking inside it is a finding there.
func (s *spool) closureLeak() {
	f := func() {
		s.mu.Lock()
		s.data = nil
	} // want "exits while s.mu is still locked"
	f()
}

// panic is terminating, like return: a wedged lock is the least of the
// caller's problems.
func (s *spool) panics() {
	s.mu.Lock()
	panic("wedged")
}

// A deferred closure that unlocks inside releases too.
func (s *spool) deferClosure() {
	s.mu.Lock()
	defer func() {
		s.data = nil
		s.mu.Unlock()
	}()
	s.data = append(s.data, 1)
}

// Deliberate lock handoff: documented to return holding the lock.
func (s *spool) lockForWrite() {
	s.mu.Lock()
	//lint:allow lockdiscipline deliberate handoff; the caller unlocks after writing
}
