package waldiscipline_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/waldiscipline"
)

func TestWALDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", waldiscipline.Analyzer, "pdme")
}
