// Package waldiscipline structurally encodes the PDME's write-ahead
// contract (PR 7): on the accept path, the journal append comes first.
//
// Durability of the fusion state rests on one ordering invariant — an
// accepted envelope is fsynced to the WAL *before* any derived state
// (fusion evidence, OOSM objects, health observations, dedup marks)
// mutates. If a mutation slips ahead of the append, a crash in the gap
// loses the envelope while keeping (part of) its effect, and recovery is no
// longer bit-identical to an undisturbed run — the exact property
// TestCrashChaosKill9Recovery proves. The chaos suite catches a violation
// only when the kill lands in the gap; this analyzer catches it at compile
// time.
//
// The check: in package pdme, any method that calls the receiver's
// appendJournal is an accept-path function. Within it,
//
//   - every state-mutating call rooted at the receiver (model.Create,
//     diag.AddReport/AddReportFrom, prog.AddReport, Health().ObserveReport/
//     ObserveHeartbeat, dedup Mark) must appear after the first
//     appendJournal call in source order — the WAL is written first;
//   - the appendJournal error must be consumed: a bare or `_ =` discarded
//     append turns "journaled before mutation" into "maybe journaled".
//
// Functions that never call appendJournal (replay, restore, fusion
// internals) are out of scope: replay re-applies effects of records already
// in the WAL, and the fusion layer below the PDME has no journal handle.
// Closure bodies count as part of their enclosing function, matching how
// acceptHeartbeat brackets its critical section.
package waldiscipline

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the waldiscipline check.
var Analyzer = &analysis.Analyzer{
	Name: "waldiscipline",
	Doc: "on the pdme accept path, state mutations must follow the " +
		"appendJournal write-ahead, and the append error must be handled",
	Run: run,
}

// journalFunc is the write-ahead entry point the contract is anchored on.
const journalFunc = "appendJournal"

// MutatingCalls names the receiver-rooted method calls that mutate derived
// state a checkpoint snapshots: OOSM posts (Create runs fusion synchronously
// via the event model), direct fusion evidence, health observations, and
// dedup marks.
var MutatingCalls = map[string]bool{
	"Create":           true,
	"AddReport":        true,
	"AddReportFrom":    true,
	"Mark":             true,
	"ObserveReport":    true,
	"ObserveHeartbeat": true,
	"Restore":          true,
	"RestoreState":     true,
}

func run(pass *analysis.Pass) error {
	if analysis.PathSegment(pass.ImportPath) != "pdme" {
		return nil
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			if len(fd.Recv.List[0].Names) == 0 {
				continue // anonymous receiver cannot root a call chain
			}
			recv := pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
			if recv == nil {
				continue
			}
			checkFunc(pass, fd, recv)
		}
	}
	return nil
}

// checkFunc applies the ordering and error-handling rules to one accept-path
// candidate. Closures inside the body are treated as part of the function.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, recv types.Object) {
	// Locate every appendJournal call and whether its error is consumed.
	firstJournal := token.NoPos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != journalFunc {
			return true
		}
		if !rootedAt(pass, sel.X, recv) {
			return true
		}
		if !firstJournal.IsValid() || call.Pos() < firstJournal {
			firstJournal = call.Pos()
		}
		return true
	})
	if !firstJournal.IsValid() {
		return // not an accept-path function
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			// A bare appendJournal statement discards the append error.
			if call, ok := n.X.(*ast.CallExpr); ok {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok &&
					sel.Sel.Name == journalFunc && rootedAt(pass, sel.X, recv) {
					pass.Reportf(call.Pos(),
						"appendJournal error discarded on the accept path; a failed append must fail the accept")
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name != "_" || i >= len(n.Rhs) {
					continue
				}
				if call, ok := n.Rhs[i].(*ast.CallExpr); ok {
					if sel, ok := call.Fun.(*ast.SelectorExpr); ok &&
						sel.Sel.Name == journalFunc && rootedAt(pass, sel.X, recv) {
						pass.Reportf(call.Pos(),
							"appendJournal error discarded on the accept path; a failed append must fail the accept")
					}
				}
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || !MutatingCalls[sel.Sel.Name] || !rootedAt(pass, sel.X, recv) {
				return true
			}
			if n.Pos() < firstJournal {
				pass.Reportf(n.Pos(),
					"%s mutates checkpointed state before the appendJournal write-ahead (journal append at %s); "+
						"a crash in the gap loses the envelope but keeps its effect",
					sel.Sel.Name, pass.Fset.Position(firstJournal))
			}
		}
		return true
	})
}

// rootedAt reports whether the selector base chain of e bottoms out at the
// receiver object: p.model, p.dedupHandle(), p.Health(), p.diag, ...
func rootedAt(pass *analysis.Pass, e ast.Expr, recv types.Object) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[x] == recv
		case *ast.SelectorExpr:
			e = x.X
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				e = sel.X
				continue
			}
			return false
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}
