// Package pdme is a testdata stand-in for the PDME accept path
// (waldiscipline keys on the final import-path segment).
package pdme

type model struct{}

func (m *model) Create(id string) {}

type registry struct{}

func (r *registry) ObserveReport(id string) {}

type dedup struct{}

func (d *dedup) Mark(key string) {}

type engine struct {
	model    *model
	health   *registry
	dedup    *dedup
	received int
}

func (p *engine) appendJournal(rec []byte) error { return nil }

func (p *engine) Health() *registry { return p.health }

// goodAccept follows the contract: fsync the WAL, then mutate.
func (p *engine) goodAccept(rec []byte, id string) error {
	if err := p.appendJournal(rec); err != nil {
		return err
	}
	p.model.Create(id)
	p.Health().ObserveReport(id)
	p.dedup.Mark(id)
	p.received++
	return nil
}

// badOrder mutates before the append: a crash in the gap loses the envelope
// but keeps its effect.
func (p *engine) badOrder(rec []byte, id string) error {
	p.model.Create(id) // want "mutates checkpointed state before the appendJournal write-ahead"
	if err := p.appendJournal(rec); err != nil {
		return err
	}
	return nil
}

// A discarded append turns "journaled before mutation" into "maybe
// journaled".
func (p *engine) bareAppend(rec []byte, id string) {
	p.appendJournal(rec) // want "appendJournal error discarded"
	p.model.Create(id)
}

func (p *engine) blankAppend(rec []byte, id string) {
	_ = p.appendJournal(rec) // want "appendJournal error discarded"
	p.model.Create(id)
}

// replay never calls appendJournal: re-applying records already in the WAL
// is out of scope.
func (p *engine) replay(id string) {
	p.model.Create(id)
	p.dedup.Mark(id)
}

// Mutations not rooted at the receiver are someone else's state.
func (p *engine) foreign(other *model, rec []byte, id string) error {
	other.Create(id)
	if err := p.appendJournal(rec); err != nil {
		return err
	}
	return nil
}

// The allow escape hatch: a reviewed pre-journal effect.
func (p *engine) allowedPrefetch(rec []byte, id string) error {
	p.dedup.Mark(id) //lint:allow waldiscipline testdata exemplar of a reviewed pre-journal mark
	if err := p.appendJournal(rec); err != nil {
		return err
	}
	return nil
}
