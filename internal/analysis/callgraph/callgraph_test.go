package callgraph

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"repro/internal/analysis"
)

const src = `package demo

import "errors"

//mpros:hotpath steady-state tick
func Root(xs []float64) (float64, error) {
	if len(xs) == 0 {
		deadEnd()
		return 0, errors.New("empty")
	}
	s := Sum(xs)
	f := func() { helperFromClosure() }
	f()
	return s, nil
}

func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += (&acc{}).add(x)
	}
	return s
}

type acc struct{ v float64 }

func (a *acc) add(x float64) float64 { a.v += x; return a.v }

func deadEnd()           {}
func helperFromClosure() {}

func Unreached() { panic("never on the hot path") }
`

func load(t *testing.T) (*token.FileSet, *analysis.Unit) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "demo.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: stubImporter{}}
	pkg, err := conf.Check("demo", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return fset, &analysis.Unit{Files: []*ast.File{f}, Pkg: pkg, TypesInfo: info, ImportPath: "demo"}
}

// stubImporter satisfies the single "errors" import without touching the
// build cache.
type stubImporter struct{}

func (stubImporter) Import(path string) (*types.Package, error) {
	pkg := types.NewPackage(path, "errors")
	str := types.Typ[types.String]
	errType := types.Universe.Lookup("error").Type()
	sig := types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(token.NoPos, pkg, "text", str)),
		types.NewTuple(types.NewVar(token.NoPos, pkg, "", errType)), false)
	pkg.Scope().Insert(types.NewFunc(token.NoPos, pkg, "New", sig))
	pkg.MarkComplete()
	return pkg, nil
}

func TestBuildNodesAndAnnotations(t *testing.T) {
	fset, unit := load(t)
	g := Build(fset, []*analysis.Unit{unit})

	root, ok := g.Nodes["demo.Root"]
	if !ok {
		t.Fatalf("no node for demo.Root; have %d nodes", len(g.Nodes))
	}
	if !root.Annotations[analysis.AnnotationHotPath] {
		t.Errorf("Root missing hotpath annotation: %v", root.Annotations)
	}
	if _, ok := g.Nodes["(*demo.acc).add"]; !ok {
		t.Errorf("method node (*demo.acc).add missing")
	}

	roots := g.Roots(analysis.AnnotationHotPath)
	if len(roots) != 1 || roots[0].ID != "demo.Root" {
		t.Errorf("Roots(hotpath) = %v", roots)
	}
}

func TestColdSpansAndEdges(t *testing.T) {
	fset, unit := load(t)
	g := Build(fset, []*analysis.Unit{unit})
	root := g.Nodes["demo.Root"]

	byCallee := map[string]Call{}
	for _, c := range root.Calls {
		byCallee[c.CalleeID] = c
	}
	// deadEnd and errors.New sit in the block ending `return 0, errors.New(...)`.
	for _, cold := range []string{"demo.deadEnd", "errors.New"} {
		c, ok := byCallee[cold]
		if !ok {
			t.Fatalf("missing call edge to %s (have %v)", cold, root.Calls)
		}
		if !c.Cold {
			t.Errorf("call to %s should be cold", cold)
		}
	}
	// Sum and the closure-folded helper are on the success path.
	for _, hot := range []string{"demo.Sum", "demo.helperFromClosure"} {
		c, ok := byCallee[hot]
		if !ok {
			t.Fatalf("missing call edge to %s (have %v)", hot, root.Calls)
		}
		if c.Cold {
			t.Errorf("call to %s should not be cold", hot)
		}
	}
}

func TestReachabilityAndChain(t *testing.T) {
	fset, unit := load(t)
	g := Build(fset, []*analysis.Unit{unit})
	r := g.Reachable(g.Roots(analysis.AnnotationHotPath))

	for _, want := range []string{"demo.Root", "demo.Sum", "(*demo.acc).add", "demo.helperFromClosure"} {
		if _, ok := r.Nodes[want]; !ok {
			t.Errorf("%s not reached", want)
		}
	}
	for _, notWant := range []string{"demo.deadEnd", "demo.Unreached"} {
		if _, ok := r.Nodes[notWant]; ok {
			t.Errorf("%s reached but should be cold/unreachable", notWant)
		}
	}

	chain := r.Chain("(*demo.acc).add")
	if got := strings.Join(chain, " -> "); got != "demo.Root -> demo.Sum -> demo.acc.add" {
		t.Errorf("chain = %q", got)
	}
}

func TestFacts(t *testing.T) {
	f := NewFacts[int]()
	if _, ok := f.Get("x"); ok {
		t.Error("empty store reported a fact")
	}
	f.Set("x", 7)
	if v, ok := f.Get("x"); !ok || v != 7 {
		t.Errorf("Get = %d, %v", v, ok)
	}
}
