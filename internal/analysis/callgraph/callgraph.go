// Package callgraph builds a module-wide static call graph over the
// type-checked units the driver loads, for the interprocedural analyzers
// (hotalloc, sendblock, goroleak).
//
// Nodes are function declarations with bodies somewhere in the module; edges
// are statically resolvable call sites (direct calls to package functions and
// to methods with concrete receivers). Function literals are folded into
// their enclosing declaration: a call made inside a closure is attributed to
// the function that lexically contains it, which matches how the hot-path
// analyzers reason about the code. Dynamic dispatch (interface method calls,
// calls through function values) is not resolved — the analyzers built on
// this graph flag the allocation/blocking constructs they can see and accept
// that a dynamic call can hide more; the //mpros annotations mark exactly the
// paths where the repo forbids such indirection from mattering.
//
// Cross-unit identity: the same function is a source-checked object in its
// own unit and an export-data object in its importers, so nodes are keyed by
// a stable string ID (types.Func.FullName of the origin), never by object
// identity.
//
// Cold spans: a block that terminates by returning a non-nil error (or by
// panicking) is a failure path, not a hot path. The graph records those spans
// per node, and marks call sites inside them, so reachability and allocation
// checks can exempt error construction — a fmt.Errorf behind `if len(frame)
// == 0` does not regress the steady-state ingest rate.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Graph is the module call graph.
type Graph struct {
	Fset *token.FileSet
	// Nodes maps FuncID to node, for every function declared with a body in
	// the module.
	Nodes map[string]*Node
}

// Node is one declared function or method.
type Node struct {
	// ID is the stable cross-unit identifier (see FuncID).
	ID string
	// Func is the declaring unit's object for the function.
	Func *types.Func
	// Decl is the declaration, body included.
	Decl *ast.FuncDecl
	// Unit is the unit the body was type-checked in.
	Unit *analysis.Unit
	// Annotations holds the //mpros: directives from the doc comment.
	Annotations map[string]bool
	// Calls lists the statically resolved call sites in the body (function
	// literals folded in), in source order.
	Calls []Call

	coldSpans []span
}

// Call is one statically resolved call site.
type Call struct {
	// CalleeID is the FuncID of the called function (which may or may not
	// have a Node — stdlib callees do not).
	CalleeID string
	// Pos is the call position.
	Pos token.Pos
	// Cold marks a call inside a cold span (see Node.IsCold).
	Cold bool
}

type span struct{ from, to token.Pos }

// IsCold reports whether pos lies in a failure-path span of the node: a
// block that terminates by returning a non-nil error or by panicking.
func (n *Node) IsCold(pos token.Pos) bool {
	for _, s := range n.coldSpans {
		if s.from <= pos && pos <= s.to {
			return true
		}
	}
	return false
}

// FuncID returns the stable identifier for a function object: the full name
// of its origin (generic instantiations collapse onto their declaration).
// Methods include the receiver type, e.g. "(*repro/internal/dsp.Spectrum).AmpAt".
func FuncID(fn *types.Func) string {
	return fn.Origin().FullName()
}

// Build constructs the call graph over units. All units must share fset.
func Build(fset *token.FileSet, units []*analysis.Unit) *Graph {
	g := &Graph{Fset: fset, Nodes: make(map[string]*Node)}
	for _, u := range units {
		for _, file := range u.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := u.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				id := FuncID(obj)
				if _, dup := g.Nodes[id]; dup {
					// The same file can appear in a plain unit and a
					// test-augmented unit; the driver deduplicates units, so a
					// duplicate here means overlapping loads — keep the first.
					continue
				}
				n := &Node{
					ID:          id,
					Func:        obj,
					Decl:        fd,
					Unit:        u,
					Annotations: analysis.Annotations(fd.Doc),
				}
				n.coldSpans = coldSpans(fd, u.TypesInfo)
				n.Calls = collectCalls(fd, u.TypesInfo, n)
				g.Nodes[id] = n
			}
		}
	}
	return g
}

// Node resolves a function object to its node, or nil when the body is
// outside the module.
func (g *Graph) Node(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.Nodes[FuncID(fn)]
}

// Roots returns the nodes carrying the given //mpros: annotation, in
// deterministic (position) order.
func (g *Graph) Roots(annotation string) []*Node {
	var out []*Node
	for _, n := range g.Nodes { // order restored by the position sort below
		if n.Annotations[annotation] {
			out = append(out, n)
		}
	}
	sortNodes(g.Fset, out)
	return out
}

func sortNodes(fset *token.FileSet, nodes []*Node) {
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0 && lessNode(fset, nodes[j], nodes[j-1]); j-- {
			nodes[j], nodes[j-1] = nodes[j-1], nodes[j]
		}
	}
}

func lessNode(fset *token.FileSet, a, b *Node) bool {
	pa, pb := fset.Position(a.Decl.Pos()), fset.Position(b.Decl.Pos())
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	return pa.Line < pb.Line
}

// Reach is the result of a reachability sweep: the reached nodes plus enough
// predecessor bookkeeping to explain *why* each one is reached.
type Reach struct {
	// Nodes maps FuncID to reached node. Roots are included.
	Nodes map[string]*Node

	g    *Graph
	pred map[string]string // reached id -> caller id ("" for roots)
}

// Reachable walks the graph from roots following non-cold call sites and
// returns every function with a body that the hot path can reach. Calls on
// failure paths (cold spans) do not propagate reachability: a helper called
// only to build an error message is not hot.
func (g *Graph) Reachable(roots []*Node) *Reach {
	r := &Reach{Nodes: make(map[string]*Node), g: g, pred: make(map[string]string)}
	var queue []*Node
	for _, n := range roots {
		if _, seen := r.Nodes[n.ID]; seen {
			continue
		}
		r.Nodes[n.ID] = n
		r.pred[n.ID] = ""
		queue = append(queue, n)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range n.Calls {
			if c.Cold {
				continue
			}
			callee, ok := g.Nodes[c.CalleeID]
			if !ok {
				continue
			}
			if _, seen := r.Nodes[callee.ID]; seen {
				continue
			}
			r.Nodes[callee.ID] = callee
			r.pred[callee.ID] = n.ID
			queue = append(queue, callee)
		}
	}
	return r
}

// Chain returns the call chain from a root to id as short function names,
// e.g. ["vibration.ExtractInto", "dsp.AnalyzeInto", "dsp.RealFFT"]. Returns
// nil when id was not reached.
func (r *Reach) Chain(id string) []string {
	if _, ok := r.Nodes[id]; !ok {
		return nil
	}
	var rev []string
	for cur := id; cur != ""; {
		rev = append(rev, ShortName(r.Nodes[cur]))
		cur = r.pred[cur]
	}
	out := make([]string, len(rev))
	for i, s := range rev {
		out[len(rev)-1-i] = s
	}
	return out
}

// ShortName renders a node as pkg.Func or pkg.Type.Method for diagnostics.
func ShortName(n *Node) string {
	fn := n.Func
	pkg := ""
	if fn.Pkg() != nil {
		pkg = analysis.PathSegment(fn.Pkg().Path()) + "."
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return pkg + named.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg + fn.Name()
}

// Facts is a typed per-function summary store, keyed by FuncID — the
// mechanism module analyzers use to compute something once per function and
// share it across the packages of the module.
type Facts[T any] struct {
	m map[string]T
}

// NewFacts returns an empty store.
func NewFacts[T any]() *Facts[T] { return &Facts[T]{m: make(map[string]T)} }

// Set records the summary for a function.
func (f *Facts[T]) Set(id string, v T) { f.m[id] = v }

// Get returns the summary for a function.
func (f *Facts[T]) Get(id string) (T, bool) {
	v, ok := f.m[id]
	return v, ok
}

// collectCalls walks the body (function literals included) and records every
// statically resolvable call.
func collectCalls(fd *ast.FuncDecl, info *types.Info, n *Node) []Call {
	var calls []Call
	ast.Inspect(fd.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := StaticCallee(info, call)
		if fn == nil {
			return true
		}
		calls = append(calls, Call{
			CalleeID: FuncID(fn),
			Pos:      call.Pos(),
			Cold:     n.IsCold(call.Pos()),
		})
		return true
	})
	return calls
}

// StaticCallee resolves a call expression to the function object it
// statically invokes: a package-level function or a method on a concrete
// receiver. Returns nil for conversions, builtins, calls through function
// values, and interface method calls.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		} else if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	case *ast.IndexListExpr:
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		} else if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	}
	if id == nil {
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok {
		if recv := sig.Recv(); recv != nil {
			if types.IsInterface(recv.Type()) {
				return nil // dynamic dispatch
			}
		}
	}
	return fn
}

// coldSpans finds the failure-path regions of a function: every guard block
// (if/else body, case clause — never the outermost function body) whose last
// statement panics or returns a provably non-nil final error: a bare non-nil
// identifier (`return err` after a check), a direct errors.New / fmt.Errorf
// call, or the address of a composite literal (a concrete error value).
// Returning a *computed* result (`return s.fastPath()`) stays hot — the rule
// only exempts code that is certainly on the way out with an error.
func coldSpans(fd *ast.FuncDecl, info *types.Info) []span {
	var spans []span
	mark := func(stmts []ast.Stmt, from, to token.Pos, returnsError bool) {
		if len(stmts) == 0 {
			return
		}
		last := stmts[len(stmts)-1]
		cold := false
		switch s := last.(type) {
		case *ast.ReturnStmt:
			if returnsError && len(s.Results) > 0 {
				cold = isNonNilError(info, s.Results[len(s.Results)-1])
			}
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
					if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
						cold = true
					}
				}
			}
		}
		if cold {
			spans = append(spans, span{from: from, to: to})
		}
	}

	// walk marks the guard blocks of one function body against that
	// function's own error-result signature; closures recurse with theirs.
	var walk func(body *ast.BlockStmt, returnsError bool)
	walk = func(body *ast.BlockStmt, returnsError bool) {
		// The outermost body is never a guard block, but a trailing
		// `return ..., fmt.Errorf(...)` (the ran-off-the-end failure return
		// after a loop) is still certainly an exit-with-error: cold for
		// exactly the span of that return statement. Bare `return err` stays
		// hot here — at the end of a function the error is usually nil on
		// the happy path.
		if returnsError && len(body.List) > 0 {
			if ret, ok := body.List[len(body.List)-1].(*ast.ReturnStmt); ok && len(ret.Results) > 0 {
				last := ast.Unparen(ret.Results[len(ret.Results)-1])
				if _, bare := last.(*ast.Ident); !bare && isNonNilError(info, ret.Results[len(ret.Results)-1]) {
					spans = append(spans, span{from: ret.Pos(), to: ret.End()})
				}
			}
		}
		ast.Inspect(body, func(node ast.Node) bool {
			switch b := node.(type) {
			case *ast.FuncLit:
				if sig, ok := info.TypeOf(b).(*types.Signature); ok {
					walk(b.Body, sigReturnsError(sig))
				}
				return false
			case *ast.BlockStmt:
				if b != body { // the outermost body is never a guard block
					mark(b.List, b.Lbrace, b.Rbrace, returnsError)
				}
			case *ast.CaseClause:
				mark(b.Body, b.Colon, b.End(), returnsError)
			case *ast.CommClause:
				mark(b.Body, b.Colon, b.End(), returnsError)
			}
			return true
		})
	}

	returnsError := false
	if res := fd.Type.Results; res != nil && len(res.List) > 0 {
		last := res.List[len(res.List)-1]
		if t := info.TypeOf(last.Type); t != nil {
			errType := types.Universe.Lookup("error").Type()
			returnsError = types.Identical(t, errType)
		}
	}
	walk(fd.Body, returnsError)
	return spans
}

// sigReturnsError reports whether a signature's final result is exactly the
// error type.
func sigReturnsError(sig *types.Signature) bool {
	res := sig.Results()
	if res == nil || res.Len() == 0 {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	return types.Identical(res.At(res.Len()-1).Type(), errType)
}

// isNonNilError reports whether the returned final-result expression is
// certainly a non-nil error value.
func isNonNilError(info *types.Info, expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e.Name != "nil" // a bare `return err` after a nil check
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, isLit := ast.Unparen(e.X).(*ast.CompositeLit)
			return isLit // &ParseError{...}
		}
	case *ast.CallExpr:
		if fn := StaticCallee(info, e); fn != nil && fn.Pkg() != nil {
			full := fn.Pkg().Path() + "." + fn.Name()
			return full == "errors.New" || full == "fmt.Errorf"
		}
	}
	return false
}
