package hotalloc_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	analysistest.RunModule(t, "testdata", hotalloc.Analyzer, "hotdep", "hotmain")
}
