package hotdep

// Use consumes a callback; the call itself is fine, the escaping literal at
// the caller is what hotalloc flags.
func Use(f func()) { f() }

// Helper is reached from the hotmain root across the package boundary, so
// its allocation is flagged with a call chain.
func Helper(xs []float64) error {
	scratch := make([]float64, len(xs)) // want "make\(\[\]\) allocates.*hot via hotmain.Tick -> hotdep.Helper"
	_ = scratch
	return nil
}

// ColdHelper is only called from failure paths; nothing here is hot.
func ColdHelper() string {
	b := make([]byte, 0, 64)
	b = append(b, "cold"...)
	return string(b)
}
