package hotmain

import (
	"errors"
	"fmt"

	"hotdep"
)

type point struct{ x, y float64 }

//mpros:hotpath steady-state ingest tick
func Tick(dst []byte, xs []float64) ([]byte, error) {
	if len(xs) == 0 {
		_ = hotdep.ColdHelper() // failure path: exempt, and ColdHelper stays unreached
		s := fmt.Sprintf("%d", len(xs))
		_ = s
		return nil, errors.New("empty frame")
	}

	m := make(map[string]int) // want "make\(map\) allocates"
	_ = m
	ml := map[string]int{"a": 1} // want "map literal allocates"
	_ = ml
	s := make([]float64, 8) // want "make\(\[\]\) allocates"
	_ = s
	c := make(chan int) // want "make\(chan\) allocates"
	_ = c
	p := new(int) // want "new allocates"
	_ = p

	b := []byte("x") // want "string-to-\[\]byte/\[\]rune conversion allocates"
	_ = b
	str := string(dst) // want "\[\]byte/\[\]rune-to-string conversion allocates"
	_ = str
	fmt.Println(xs) // want "fmt.Println boxes its arguments"

	v := &point{1, 2} // want "address of composite literal escapes"
	_ = v
	w := point{1, 2} // value literal: stack, fine
	_ = w
	sl := []int{1, 2} // want "slice literal allocates its backing array"
	_ = sl

	dst = append(dst, 'a') // appending to a caller-provided buffer: fine
	var tmp []byte
	tmp = append(tmp, 'b') // want "append may grow and reallocate"
	_ = tmp

	push := func(x float64) { _ = x } // bound local, only ever called: fine
	push(1)
	func() { push(2) }() // immediately invoked: fine
	defer func() { push(3) }()

	cb := func() { push(4) } // want "function literal escapes"
	hotdep.Use(cb)

	allowed := map[int]int{} //lint:allow hotalloc deliberate: documented one-time table build
	_ = allowed

	return dst, hotdep.Helper(xs)
}

// Unannotated is not a hotpath root and unreachable from one; it may allocate
// freely.
func Unannotated() map[string]int {
	return map[string]int{"free": 1}
}
