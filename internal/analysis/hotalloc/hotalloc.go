// Package hotalloc defines an interprocedural analyzer enforcing the repo's
// hot-path allocation contract: a function annotated //mpros:hotpath — and
// everything statically reachable from it on non-failure paths — must not
// heap-allocate in steady state.
//
// MPROS targets embedded high-performance hardware where a GC pause during
// the vibration ingest tick is a missed deadline, not a style nit. The DSP →
// feature-extraction → SBFR → report-encode pipeline is therefore written
// against preallocated scratch (construction-time sizing, caller-provided
// buffers) and this analyzer keeps it that way: an innocent fmt.Sprintf three
// calls below vibration feature extraction fails lint instead of silently
// regressing the ingest rate.
//
// Flagged on reachable hot code (outside cold spans — blocks that terminate
// by returning a non-nil error or panicking are failure paths and exempt):
//
//   - map, slice, and channel construction: make, new, map/slice composite
//     literals
//   - taking the address of a composite literal (&T{...} escapes)
//   - append to anything other than a caller-provided buffer (the
//     strconv.AppendFloat idiom — appending to a function parameter — is the
//     sanctioned way to build output)
//   - fmt.* calls (interface boxing of every argument)
//   - string ↔ []byte/[]rune conversions (copy + allocate)
//   - escaping function literals (a closure passed around captures its
//     variables on the heap; literals that are directly invoked, deferred,
//     or bound to a local used only in call position do not escape)
//
// Plain struct/array value literals and &ident stay legal: they are
// stack-allocated. Genuinely intentional sites take a reasoned
// //lint:allow hotalloc.
package hotalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

// Analyzer flags heap allocations reachable from //mpros:hotpath roots.
var Analyzer = &analysis.Analyzer{
	Name:      "hotalloc",
	Doc:       "functions reachable from //mpros:hotpath roots must not heap-allocate outside failure paths",
	RunModule: run,
}

func run(pass *analysis.ModulePass) error {
	g := callgraph.Build(pass.Fset, pass.Units)
	reach := g.Reachable(g.Roots(analysis.AnnotationHotPath))
	for _, id := range sortedIDs(reach) {
		n := reach.Nodes[id]
		if analysis.IsTestFile(pass.Fset, n.Decl.Pos()) {
			continue
		}
		checkNode(pass, reach, n)
	}
	return nil
}

// sortedIDs returns the reached node IDs in deterministic order. The driver
// re-sorts findings by position anyway; this keeps the walk itself stable.
func sortedIDs(reach *callgraph.Reach) []string {
	ids := make([]string, 0, len(reach.Nodes))
	for id := range reach.Nodes {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}

func checkNode(pass *analysis.ModulePass, reach *callgraph.Reach, n *callgraph.Node) {
	info := n.Unit.TypesInfo
	params := paramObjects(n, info)
	callOnlyLits := callOnlyFuncLits(n.Decl.Body, info)

	via := ""
	if chain := reach.Chain(n.ID); len(chain) > 1 {
		via = " (hot via " + strings.Join(chain, " -> ") + ")"
	}
	flag := func(pos ast.Node, what string) {
		if n.IsCold(pos.Pos()) {
			return
		}
		pass.Reportf(pos.Pos(), "%s on hot path%s", what, via)
	}

	// Composite literals we flag at the address-of site are remembered so the
	// literal itself is not reported twice.
	addressed := map[*ast.CompositeLit]bool{}

	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch e := node.(type) {
		case *ast.UnaryExpr:
			if e.Op.String() != "&" {
				return true
			}
			if lit, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
				addressed[lit] = true
				flag(e, "address of composite literal escapes to the heap")
			}

		case *ast.CompositeLit:
			if addressed[e] {
				return true
			}
			switch info.TypeOf(e).Underlying().(type) {
			case *types.Map:
				flag(e, "map literal allocates")
			case *types.Slice:
				flag(e, "slice literal allocates its backing array")
			}

		case *ast.FuncLit:
			if !callOnlyLits[e] {
				flag(e, "function literal escapes; its captures allocate")
			}

		case *ast.CallExpr:
			checkCall(info, e, params, flag)
		}
		return true
	})
}

func checkCall(info *types.Info, call *ast.CallExpr, params map[types.Object]bool,
	flag func(ast.Node, string)) {

	// Conversions: string <-> []byte/[]rune copy and allocate.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type.Underlying()
		src := info.TypeOf(call.Args[0])
		if src == nil {
			return
		}
		switch {
		case isString(dst) && isByteOrRuneSlice(src.Underlying()):
			flag(call, "[]byte/[]rune-to-string conversion allocates")
		case isByteOrRuneSlice(dst) && isString(src.Underlying()):
			flag(call, "string-to-[]byte/[]rune conversion allocates")
		}
		return
	}

	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			checkBuiltin(info, call, b.Name(), params, flag)
			return
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			flag(call, "fmt."+fn.Name()+" boxes its arguments into interfaces")
			return
		}
	}
}

func checkBuiltin(info *types.Info, call *ast.CallExpr, name string,
	params map[types.Object]bool, flag func(ast.Node, string)) {

	switch name {
	case "new":
		flag(call, "new allocates")
	case "make":
		if len(call.Args) == 0 {
			return
		}
		switch info.TypeOf(call.Args[0]).Underlying().(type) {
		case *types.Map:
			flag(call, "make(map) allocates")
		case *types.Chan:
			flag(call, "make(chan) allocates")
		case *types.Slice:
			flag(call, "make([]) allocates; size scratch buffers at construction time")
		}
	case "append":
		if len(call.Args) == 0 {
			return
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && params[info.Uses[id]] {
			return // strconv.Append-style: growing a caller-provided buffer
		}
		flag(call, "append may grow and reallocate; preallocate capacity or append to a caller-provided buffer")
	}
}

// paramObjects collects the function's parameters and receiver — the objects
// an append target may legally resolve to.
func paramObjects(n *callgraph.Node, info *types.Info) map[types.Object]bool {
	out := map[types.Object]bool{}
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	add(n.Decl.Recv)
	add(n.Decl.Type.Params)
	return out
}

// callOnlyFuncLits finds function literals that provably do not escape:
// literals invoked where they appear (IIFE, defer, go) and literals bound to
// a local variable whose every use is in call position.
func callOnlyFuncLits(body *ast.BlockStmt, info *types.Info) map[*ast.FuncLit]bool {
	out := map[*ast.FuncLit]bool{}
	litOf := map[types.Object]*ast.FuncLit{}

	ast.Inspect(body, func(node ast.Node) bool {
		switch s := node.(type) {
		case *ast.CallExpr:
			if lit, ok := ast.Unparen(s.Fun).(*ast.FuncLit); ok {
				out[lit] = true
			}
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, rhs := range s.Rhs {
				lit, ok := ast.Unparen(rhs).(*ast.FuncLit)
				if !ok {
					continue
				}
				if id, ok := s.Lhs[i].(*ast.Ident); ok {
					if obj := info.Defs[id]; obj != nil {
						litOf[obj] = lit
					}
				}
			}
		}
		return true
	})

	if len(litOf) == 0 {
		return out
	}

	// A bound literal survives only if every use of its variable is a call.
	uses := map[types.Object]int{}
	callUses := map[types.Object]int{}
	ast.Inspect(body, func(node ast.Node) bool {
		switch s := node.(type) {
		case *ast.Ident:
			if obj := info.Uses[s]; obj != nil {
				if _, tracked := litOf[obj]; tracked {
					uses[obj]++
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(s.Fun).(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					if _, tracked := litOf[obj]; tracked {
						callUses[obj]++
					}
				}
			}
		}
		return true
	})
	for obj, lit := range litOf {
		if uses[obj] == callUses[obj] {
			out[lit] = true
		}
	}
	return out
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}
