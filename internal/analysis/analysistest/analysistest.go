// Package analysistest runs one analyzer over a testdata source tree and
// diffs its findings (after //lint:allow filtering, which is therefore also
// under test) against // want expectations embedded in the sources.
//
// Layout mirrors x/tools/go/analysis/analysistest: each package under
// <testdata>/src/<name> is loaded as import path <name>, so analyzers that
// key on the final import-path segment (noclock, errwrap) can be pointed at
// stand-in packages named chiller, uplink, etc. Testdata packages may import
// the standard library (resolved via `go list -export`) and sibling testdata
// packages (type-checked from source).
//
// Expectation syntax, in a trailing comment:
//
//	bad := a == b // want "exact =="
//
// Each `want` keyword may carry a line offset and is followed by one or more
// quoted regexps, each of which must match the message of a distinct finding
// on the target line:
//
//	//lint:allow floateq
//	bad := a == b // want "exact ==" want-1 "carries no reason"
//
// Findings with no matching want, and wants with no matching finding, fail
// the test.
package analysistest

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/driver"
)

// Run loads each named package from testdata/src and checks analyzer a's
// findings against the packages' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		runPkg(t, testdata, a, pkg)
	}
}

// RunModule loads every named package from testdata/src into one module-wide
// pass and checks an interprocedural analyzer's findings against the want
// comments across all of them. List dependencies before their importers so
// cross-package references resolve to the same type-checked packages.
func RunModule(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &loader{testdata: testdata, fset: fset, pkgs: make(map[string]*types.Package)}

	var units []*analysis.Unit
	var allFiles []*ast.File
	for _, pkgPath := range pkgs {
		files, err := ld.parseDir(pkgPath)
		if err != nil {
			t.Fatalf("%s: %v", pkgPath, err)
		}
		info := driver.NewTypesInfo()
		pkg, err := ld.check(pkgPath, files, info)
		if err != nil {
			t.Fatalf("typecheck %s: %v", pkgPath, err)
		}
		ld.pkgs[pkgPath] = pkg
		units = append(units, &analysis.Unit{
			Files: files, Pkg: pkg, TypesInfo: info, ImportPath: pkgPath,
		})
		allFiles = append(allFiles, files...)
	}

	findings, err := driver.AnalyzeModule(fset, units, []*analysis.Analyzer{a}, driver.Options{})
	if err != nil {
		t.Fatalf("analyze %v: %v", pkgs, err)
	}

	wants := collectWants(t, fset, allFiles)
	matchFindings(t, strings.Join(pkgs, ","), findings, wants)
}

func runPkg(t *testing.T, testdata string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &loader{testdata: testdata, fset: fset, pkgs: make(map[string]*types.Package)}

	files, err := ld.parseDir(pkgPath)
	if err != nil {
		t.Fatalf("%s: %v", pkgPath, err)
	}
	info := driver.NewTypesInfo()
	pkg, err := ld.check(pkgPath, files, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", pkgPath, err)
	}

	findings, err := driver.AnalyzeFiles(fset, files, pkg, info, pkgPath, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analyze %s: %v", pkgPath, err)
	}

	wants := collectWants(t, fset, files)
	matchFindings(t, pkgPath, findings, wants)
}

// want is one expected finding.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	src  token.Position // where the comment was written, for error messages
	hit  bool
}

var wantRE = regexp.MustCompile(`want([+-][0-9]+)?`)

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok || !strings.Contains(text, "want") {
					continue
				}
				pos := fset.Position(c.Slash)
				wants = append(wants, parseWants(t, text, pos)...)
			}
		}
	}
	return wants
}

// parseWants scans one comment for `want[±N] "re"...` groups.
func parseWants(t *testing.T, text string, pos token.Position) []*want {
	t.Helper()
	var wants []*want
	for {
		loc := wantRE.FindStringSubmatchIndex(text)
		if loc == nil {
			return wants
		}
		offset := 0
		if loc[2] >= 0 {
			offset, _ = strconv.Atoi(text[loc[2]:loc[3]])
		}
		text = text[loc[1]:]
		for {
			text = strings.TrimLeft(text, " \t")
			if len(text) == 0 || text[0] != '"' {
				break
			}
			end := strings.Index(text[1:], `"`)
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern", pos)
			}
			pat := text[1 : 1+end]
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
			}
			wants = append(wants, &want{
				file: pos.Filename,
				line: pos.Line + offset,
				re:   re,
				src:  pos,
			})
			text = text[2+end:]
		}
	}
}

func matchFindings(t *testing.T, pkgPath string, findings []driver.Finding, wants []*want) {
	t.Helper()
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected finding: %s", pkgPath, f)
		}
	}
	sort.Slice(wants, func(i, j int) bool { return wants[i].line < wants[j].line })
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s: no finding on %s:%d matching %q (want at %s)",
				pkgPath, filepath.Base(w.file), w.line, w.re, w.src)
		}
	}
}

// loader resolves testdata imports: sibling testdata packages from source,
// everything else from `go list -export` data.
type loader struct {
	testdata string
	fset     *token.FileSet
	pkgs     map[string]*types.Package
}

func (ld *loader) parseDir(pkgPath string) ([]*ast.File, error) {
	dir := filepath.Join(ld.testdata, "src", pkgPath)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return files, nil
}

func (ld *loader) check(pkgPath string, files []*ast.File, info *types.Info) (*types.Package, error) {
	conf := types.Config{Importer: importerFunc(ld.importPkg)}
	return conf.Check(pkgPath, ld.fset, files, info)
}

func (ld *loader) importPkg(path string) (*types.Package, error) {
	if p, ok := ld.pkgs[path]; ok {
		return p, nil
	}
	if _, err := os.Stat(filepath.Join(ld.testdata, "src", path)); err == nil {
		files, err := ld.parseDir(path)
		if err != nil {
			return nil, err
		}
		p, err := ld.check(path, files, driver.NewTypesInfo())
		if err != nil {
			return nil, err
		}
		ld.pkgs[path] = p
		return p, nil
	}
	p, err := stdImporter(ld.fset).Import(path)
	if err != nil {
		return nil, err
	}
	ld.pkgs[path] = p
	return p, nil
}

// stdImporter imports standard-library packages from `go list -export`
// data. The export-file table is built once per process, on first use.
var (
	stdOnce    sync.Once
	stdExports map[string]string
	stdErr     error
)

func stdImporter(fset *token.FileSet) types.Importer {
	stdOnce.Do(func() {
		cmd := exec.Command("go", "list", "-export", "-deps", "-json=ImportPath,Export", "std")
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			stdErr = fmt.Errorf("go list std: %w\n%s", err, stderr.String())
			return
		}
		stdExports = make(map[string]string)
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); errors.Is(err, io.EOF) {
				break
			} else if err != nil {
				stdErr = err
				return
			}
			if p.Export != "" {
				stdExports[p.ImportPath] = p.Export
			}
		}
	})
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if stdErr != nil {
			return nil, stdErr
		}
		e, ok := stdExports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
