package masscheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/masscheck"
)

func TestMassCheck(t *testing.T) {
	analysistest.Run(t, "testdata", masscheck.Analyzer, "masstab")
}
