// Package masscheck verifies that Dempster-Shafer mass assignments built
// from compile-time constants sum to 1.
//
// A basic probability assignment must distribute exactly unit mass over its
// focal sets (dempster.Mass.Validate enforces it at run time — but only when
// somebody remembers to call it, and E1/E2's exact numbers depend on the
// evidence tables being well-formed before combination). masscheck proves
// the static cases at build time:
//
//   - a `m := dempster.NewMass(f)` followed by unconditional `m.Set(s, c)`
//     calls with constant masses, when m is not normalized and does not
//     escape, must set masses summing to 1±1e-9. Two Sets on a syntactically
//     identical focal set count once (Set replaces).
//
//   - a composite literal map[dempster.Set]float64{...} with all-constant
//     values must sum to 1±1e-9.
//
// Anything dynamic — non-constant masses, conditional Sets, Normalize, or
// the mass escaping to another function — is out of scope and ignored.
package masscheck

import (
	"bytes"
	"go/ast"
	"go/constant"
	"go/printer"
	"go/token"
	"go/types"
	"math"

	"repro/internal/analysis"
)

// Analyzer is the masscheck check.
var Analyzer = &analysis.Analyzer{
	Name: "masscheck",
	Doc:  "constant Dempster-Shafer mass assignments must sum to 1±1e-9",
	Run:  run,
}

// Tolerance is the permitted deviation of a constant mass sum from 1.
const Tolerance = 1e-9

// readOnly lists *dempster.Mass methods that neither rescale masses nor let
// the value escape mutation tracking.
var readOnly = map[string]bool{
	"Get": true, "Belief": true, "Plausibility": true, "Unknown": true,
	"Validate": true, "FocalSets": true, "Pignistic": true, "String": true,
	"Frame": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		checkCompositeLits(pass, file)
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd.Body)
			}
		}
	}
	return nil
}

// fromDempster reports whether obj belongs to a package whose import path
// ends in "dempster" (the repo package, or a test-harness stand-in).
func fromDempster(obj types.Object) bool {
	return obj != nil && obj.Pkg() != nil &&
		analysis.PathSegment(obj.Pkg().Path()) == "dempster"
}

// candidate tracks one locally constructed mass function.
type candidate struct {
	obj          types.Object
	newMassPos   token.Pos
	masses       map[string]float64 // focal-set syntax -> last constant mass
	disqualified bool
	allowedUses  map[*ast.Ident]bool
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	cands := findCandidates(pass, body)
	if len(cands) == 0 {
		return
	}
	cond := conditionalRanges(body)

	// First pass: interpret the method calls on each candidate.
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recv, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		c, ok := cands[pass.TypesInfo.Uses[recv]]
		if !ok {
			return true
		}
		c.allowedUses[recv] = true
		switch {
		case sel.Sel.Name == "Set" && len(call.Args) == 2:
			if cond.contains(call.Pos()) {
				c.disqualified = true
				return true
			}
			tv, ok := pass.TypesInfo.Types[call.Args[1]]
			if !ok || tv.Value == nil {
				c.disqualified = true // dynamic mass
				return true
			}
			v, _ := constant.Float64Val(constant.ToFloat(tv.Value))
			c.masses[exprString(pass.Fset, call.Args[0])] = v
		case readOnly[sel.Sel.Name]:
			// reads never change the sum
		default:
			// Normalize, Clone-into-mutation, or an unknown future method.
			c.disqualified = true
		}
		return true
	})

	// Second pass: any use of the variable outside those method receivers
	// (argument, assignment, return, closure capture) makes the final state
	// unknowable locally.
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if c, ok := cands[pass.TypesInfo.Uses[id]]; ok && !c.allowedUses[id] {
			c.disqualified = true
		}
		return true
	})

	for _, c := range cands {
		if c.disqualified || len(c.masses) == 0 {
			continue
		}
		var sum float64
		for _, v := range c.masses {
			sum += v
		}
		if math.Abs(sum-1) > Tolerance {
			pass.Reportf(c.newMassPos,
				"constant Dempster-Shafer masses sum to %g, want 1 (±%g); fix the table or Normalize",
				sum, Tolerance)
		}
	}
}

// findCandidates locates `x := NewMass(...)` / `x := dempster.NewMass(...)`
// declarations in the function body.
func findCandidates(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]*candidate {
	cands := make(map[types.Object]*candidate)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		var calleeIdent *ast.Ident
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			calleeIdent = fun
		case *ast.SelectorExpr:
			calleeIdent = fun.Sel
		default:
			return true
		}
		fn, ok := pass.TypesInfo.Uses[calleeIdent].(*types.Func)
		if !ok || fn.Name() != "NewMass" || !fromDempster(fn) {
			return true
		}
		obj := pass.TypesInfo.Defs[lhs]
		if obj == nil {
			return true
		}
		cands[obj] = &candidate{
			obj:         obj,
			newMassPos:  as.Pos(),
			masses:      make(map[string]float64),
			allowedUses: make(map[*ast.Ident]bool),
		}
		return true
	})
	return cands
}

// posRanges marks source regions whose execution is conditional, repeated,
// or deferred relative to straight-line function entry.
type posRanges []struct{ lo, hi token.Pos }

func (r posRanges) contains(p token.Pos) bool {
	for _, rr := range r {
		if p >= rr.lo && p < rr.hi {
			return true
		}
	}
	return false
}

func conditionalRanges(body *ast.BlockStmt) posRanges {
	var out posRanges
	add := func(n ast.Node) {
		if n != nil {
			out = append(out, struct{ lo, hi token.Pos }{n.Pos(), n.End()})
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			add(n.Body)
			add(n.Else)
		case *ast.ForStmt:
			add(n.Body)
			add(n.Post)
		case *ast.RangeStmt:
			add(n.Body)
		case *ast.SwitchStmt:
			add(n.Body)
		case *ast.TypeSwitchStmt:
			add(n.Body)
		case *ast.SelectStmt:
			add(n.Body)
		case *ast.FuncLit:
			add(n.Body)
		case *ast.DeferStmt:
			add(n.Call)
		case *ast.GoStmt:
			add(n.Call)
		}
		return true
	})
	return out
}

// checkCompositeLits flags map[dempster.Set]float64 literals whose
// all-constant values do not sum to 1.
func checkCompositeLits(pass *analysis.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok || len(lit.Elts) == 0 {
			return true
		}
		t := pass.TypesInfo.TypeOf(lit)
		if t == nil {
			return true
		}
		m, ok := t.Underlying().(*types.Map)
		if !ok {
			return true
		}
		key, ok := m.Key().(*types.Named)
		if !ok || key.Obj().Name() != "Set" || !fromDempster(key.Obj()) {
			return true
		}
		elem, ok := m.Elem().Underlying().(*types.Basic)
		if !ok || elem.Info()&types.IsFloat == 0 {
			return true
		}
		var sum float64
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[kv.Value]
			if !ok || tv.Value == nil {
				return true // dynamic entry: out of scope
			}
			v, _ := constant.Float64Val(constant.ToFloat(tv.Value))
			sum += v
		}
		if math.Abs(sum-1) > Tolerance {
			pass.Reportf(lit.Pos(),
				"constant Dempster-Shafer mass literal sums to %g, want 1 (±%g)",
				sum, Tolerance)
		}
		return true
	})
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var b bytes.Buffer
	if err := printer.Fprint(&b, fset, e); err != nil {
		return "?"
	}
	return b.String()
}
