// Package dempster is a minimal stand-in for repro/internal/dempster: the
// masscheck analyzer recognizes it by the final import-path segment and the
// NewMass/Set/Normalize method shapes.
package dempster

// Set is a subset of a frame of discernment.
type Set uint64

// Singleton returns the set containing only hypothesis i.
func Singleton(i int) Set { return 1 << uint(i) }

// Frame is a frame of discernment.
type Frame struct{}

// Theta returns the full frame.
func (f *Frame) Theta() Set { return ^Set(0) }

// Mass is a basic probability assignment.
type Mass struct{ m map[Set]float64 }

// NewMass returns an empty mass function over f.
func NewMass(f *Frame) *Mass { return &Mass{m: map[Set]float64{}} }

// Set assigns mass v to focal set s, replacing any previous assignment.
func (m *Mass) Set(s Set, v float64) error { m.m[s] = v; return nil }

// Get returns the mass on exactly s.
func (m *Mass) Get(s Set) float64 { return m.m[s] }

// Normalize rescales masses to sum to 1.
func (m *Mass) Normalize() error { return nil }

// Validate checks the unit-sum invariant at run time.
func (m *Mass) Validate(tol float64) error { return nil }
