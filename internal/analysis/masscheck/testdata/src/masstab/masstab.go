// Package masstab exercises the masscheck analyzer over constant
// Dempster-Shafer mass tables.
package masstab

import "dempster"

func deficit(f *dempster.Frame) float64 {
	m := dempster.NewMass(f) // want "sum to 0.9, want 1"
	m.Set(dempster.Singleton(0), 0.4)
	m.Set(dempster.Singleton(1), 0.5)
	return m.Get(dempster.Singleton(0))
}

func excess(f *dempster.Frame) float64 {
	m := dempster.NewMass(f) // want "sum to 1.2, want 1"
	m.Set(dempster.Singleton(0), 0.7)
	m.Set(f.Theta(), 0.5)
	return m.Get(f.Theta())
}

func incomplete(f *dempster.Frame) float64 {
	m := dempster.NewMass(f) // want "sum to 0.5, want 1"
	m.Set(dempster.Singleton(0), 0.5)
	return m.Get(dempster.Singleton(0))
}

func exact(f *dempster.Frame) float64 {
	m := dempster.NewMass(f)
	m.Set(dempster.Singleton(0), 0.4)
	m.Set(f.Theta(), 0.6)
	return m.Get(f.Theta())
}

// replaced: Set replaces the mass on a syntactically identical focal set, so
// only the last assignment counts.
func replaced(f *dempster.Frame) float64 {
	m := dempster.NewMass(f)
	m.Set(dempster.Singleton(0), 0.2)
	m.Set(dempster.Singleton(0), 0.4)
	m.Set(f.Theta(), 0.6)
	return m.Get(f.Theta())
}

// normalized: an explicit Normalize takes the table out of scope — any
// constant pre-normalization sum is fine.
func normalized(f *dempster.Frame) error {
	m := dempster.NewMass(f)
	m.Set(dempster.Singleton(0), 2)
	m.Set(f.Theta(), 2)
	return m.Normalize()
}

// conditional: a Set under a branch makes the final sum flow-dependent.
func conditional(f *dempster.Frame, strong bool) float64 {
	m := dempster.NewMass(f)
	m.Set(dempster.Singleton(0), 0.4)
	if strong {
		m.Set(f.Theta(), 0.6)
	}
	return m.Get(f.Theta())
}

// dynamic: a non-constant mass is out of scope.
func dynamic(f *dempster.Frame, belief float64) float64 {
	m := dempster.NewMass(f)
	m.Set(dempster.Singleton(0), belief)
	return m.Get(dempster.Singleton(0))
}

// escaped: once the mass reaches another function the local view is
// incomplete.
func escaped(f *dempster.Frame) float64 {
	m := dempster.NewMass(f)
	m.Set(dempster.Singleton(0), 0.4)
	fill(m)
	return m.Get(dempster.Singleton(0))
}

func fill(m *dempster.Mass) { m.Set(dempster.Singleton(1), 0.6) }

// literals: composite-literal mass tables are summed directly.
var badTable = map[dempster.Set]float64{ // want "literal sums to 0.8, want 1"
	dempster.Singleton(0): 0.3,
	dempster.Singleton(1): 0.5,
}

var goodTable = map[dempster.Set]float64{
	dempster.Singleton(0): 0.3,
	dempster.Singleton(1): 0.7,
}

// allowed exercises the suppression path: an intentionally sub-unit table
// (e.g. an invalid-input fixture) carries a reasoned directive.
func allowed(f *dempster.Frame) float64 {
	//lint:allow masscheck deliberately malformed evidence for a validation fixture
	m := dempster.NewMass(f)
	m.Set(dempster.Singleton(0), 0.25)
	return m.Get(dempster.Singleton(0))
}
