package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"repro/internal/fusion"
	"repro/internal/hazard"
	"repro/internal/oosm"
	"repro/internal/pdme"
	"repro/internal/proto"
	"repro/internal/relstore"
	"repro/internal/vibration"
)

func figureGroups() fusion.Groups {
	return fusion.Groups{
		"electrical": {"motor rotor bar problem", "stator electrical unbalance"},
		"structural": {"motor imbalance", "motor misalignment"},
		"lubricant":  {"oil whirl", "pump bearing housing looseness"},
	}
}

// E10Figure2Browser reproduces the Figure 2 PDME browser state: "for
// machine A/C Compressor Motor 1, six condition reports from four
// different knowledge sources (expert systems) have been received, some
// conflicting and some reinforcing. After these reports are processed by
// the Knowledge Fusion component, the predictions of failure for each
// machine condition group are shown at the bottom of the screen."
func E10Figure2Browser(seed int64) (*Result, error) {
	model, err := oosm.NewModel(relstore.NewMemory())
	if err != nil {
		return nil, err
	}
	engine, err := pdme.New(model, figureGroups())
	if err != nil {
		return nil, err
	}
	defer engine.Close()
	machine := "A/C Compressor Motor 1"
	at := time.Date(1998, 9, 1, 8, 0, 0, 0, time.UTC)
	day := 86400.0
	mk := func(ks, cond string, sev, bel float64, offset time.Duration, vec proto.PrognosticVector) *proto.Report {
		return &proto.Report{
			DCID: "dc-1", KnowledgeSourceID: ks, SensedObjectID: machine,
			MachineConditionID: cond, Severity: sev, Belief: bel,
			Timestamp: at.Add(offset), Prognostics: vec,
		}
	}
	vec := proto.PrognosticVector{
		{Probability: 0.2, HorizonSeconds: 14 * day},
		{Probability: 0.7, HorizonSeconds: 45 * day},
	}
	reports := []*proto.Report{
		mk("ks/dli", "motor imbalance", 0.55, 0.8, 0, vec),
		mk("ks/sbfr", "motor imbalance", 0.5, 0.6, 5*time.Minute, nil),
		mk("ks/wnn", "motor misalignment", 0.4, 0.5, 10*time.Minute, nil),
		mk("ks/fuzzy", "oil whirl", 0.3, 0.4, 15*time.Minute, vec),
		mk("ks/dli", "oil whirl", 0.35, 0.5, 20*time.Minute, nil),
		mk("ks/wnn", "motor rotor bar problem", 0.6, 0.7, 25*time.Minute, nil),
	}
	for _, r := range reports {
		if err := engine.Deliver(r); err != nil {
			return nil, err
		}
	}
	view, err := engine.RenderBrowser(machine)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:         "E10",
		Title:      "Figure 2 PDME browser: six reports, four knowledge sources, fused predictions",
		PaperClaim: "six condition reports from four knowledge sources, some conflicting and some reinforcing; fused predictions per condition group below",
		Header:     []string{"browser rendering (verbatim)"},
	}
	for _, line := range strings.Split(strings.TrimRight(view, "\n"), "\n") {
		res.Rows = append(res.Rows, []string{line})
	}
	return res, nil
}

// E11EventLatency exercises the §4.5 event model: "an event model ... allows
// client programs to be notified of changes to property or relationship
// values without the need to poll. The Knowledge Fusion component uses this
// to automatically process failure prediction reports as they are delivered
// to the OOSM." The run measures end-to-end report→fused-conclusion latency
// through the event path, and confirms zero polling (fusion runs exactly
// once per report).
func E11EventLatency(seed int64) (*Result, error) {
	model, err := oosm.NewModel(relstore.NewMemory())
	if err != nil {
		return nil, err
	}
	engine, err := pdme.New(model, figureGroups())
	if err != nil {
		return nil, err
	}
	defer engine.Close()

	conclusionUpdates := 0
	sub := model.SubscribeClass(pdme.ConclusionClass, oosm.ObjectCreated, func(oosm.Event) {
		conclusionUpdates++
	})
	defer sub.Cancel()
	sub2 := model.SubscribeClass(pdme.ConclusionClass, oosm.PropertyChanged, func(e oosm.Event) {
		// One PropertyChanged fires per property; count conclusion rewrites
		// once via the updated_at marker.
		if e.Property == "updated_at" {
			conclusionUpdates++
		}
	})
	defer sub2.Cancel()

	const reports = 2000
	at := time.Date(1998, 9, 1, 0, 0, 0, 0, time.UTC)
	conds := []string{"motor imbalance", "oil whirl", "motor rotor bar problem"}
	start := stopwatch()
	for i := 0; i < reports; i++ {
		r := &proto.Report{
			DCID: "dc-1", KnowledgeSourceID: "ks", SensedObjectID: "motor/1",
			MachineConditionID: conds[i%3], Severity: 0.5, Belief: 0.3,
			Timestamp: at.Add(time.Duration(i) * time.Second),
		}
		if err := engine.Deliver(r); err != nil {
			return nil, err
		}
	}
	elapsed := lap(start)
	perReport := elapsed / reports
	res := &Result{
		ID:         "E11",
		Title:      "OOSM event model: report delivery → fused conclusion, no polling",
		PaperClaim: "clients are notified of changes without the need to poll; KF auto-processes reports as they are delivered",
		Header:     []string{"metric", "value"},
		Rows: [][]string{
			{"reports delivered", fmt.Sprintf("%d", reports)},
			{"conclusion events observed", fmt.Sprintf("%d", conclusionUpdates)},
			{"events per report", f2(float64(conclusionUpdates) / reports)},
			{"end-to-end latency per report", perReport.Round(time.Microsecond).String()},
		},
		Notes: []string{
			"every report triggers fusion through the subscription path; conclusion events fan out to the browser subscription with no polling loop anywhere.",
		},
	}
	return res, nil
}

// E12HazardRefinement measures the §10.1 extension: survival-analysis
// refinement of prognostics against the phase-1 worst-case envelope.
// A fleet of bearings fails per a Weibull wear-out law; both prognostic
// generators predict P(fail within h | alive at age a) for held-out units,
// scored by Brier score against actual outcomes.
func E12HazardRefinement(seed int64) (*Result, error) {
	rng := rand.New(rand.NewSource(seed + 13))
	trueLife := hazard.Weibull{Shape: 2.5, Scale: 4000} // hours
	draw := func() float64 {
		u := rng.Float64()
		return trueLife.Quantile(u)
	}
	// Historical maintenance archive (§9: "archives of maintenance data").
	history := make([]hazard.Observation, 400)
	for i := range history {
		life := draw()
		if life > 6000 { // study window truncation
			history[i] = hazard.Observation{Time: 6000, Censored: true}
		} else {
			history[i] = hazard.Observation{Time: life}
		}
	}
	fit, err := hazard.FitWeibull(history)
	if err != nil {
		return nil, err
	}

	// Worst-case baseline: the phase-1 §5.4 approach tied to the observed
	// severity grade. Units are inspected at a known age; the baseline maps
	// age to a grade by quartile of characteristic life.
	baselineVector := func(age float64) proto.PrognosticVector {
		frac := age / trueLife.Scale
		var g proto.SeverityGrade
		switch {
		case frac < 0.4:
			g = proto.SeveritySlight
		case frac < 0.8:
			g = proto.SeverityModerate
		case frac < 1.1:
			g = proto.SeveritySerious
		default:
			g = proto.SeverityExtreme
		}
		return vibration.WorstCasePrognostic(g, frac)
	}

	horizons := []float64{250, 500, 1000, 2000} // hours ahead
	const testUnits = 3000
	var brierBase, brierRefined float64
	n := 0
	for i := 0; i < testUnits; i++ {
		life := draw()
		age := rng.Float64() * life // inspected at a uniformly random age while alive
		refined, err := hazard.RefinePrognostic(fit, age, horizons)
		if err != nil {
			continue
		}
		base := baselineVector(age)
		for hi, h := range horizons {
			actual := 0.0
			if life <= age+h {
				actual = 1
			}
			pRef := refined[hi].Probability
			// The worst-case vector is expressed in seconds in the §6.1
			// categories; evaluate it at the horizon converted to days of
			// operation (1 operating hour == 1 hour wall time here).
			pBase := base.ProbabilityAt(time.Duration(h * float64(time.Hour)))
			brierRefined += (pRef - actual) * (pRef - actual)
			brierBase += (pBase - actual) * (pBase - actual)
			n++
		}
	}
	brierRefined /= float64(n)
	brierBase /= float64(n)

	res := &Result{
		ID:         "E12",
		Title:      "Hazard/survival refinement vs worst-case envelope prognostics",
		PaperClaim: "survival analysis of history data 'would yield better projections of future failures' (§10.1)",
		Header:     []string{"metric", "value"},
		Rows: [][]string{
			{"true life distribution", fmt.Sprintf("Weibull(k=%.1f, λ=%.0f h)", trueLife.Shape, trueLife.Scale)},
			{"fitted from 400-unit archive", fmt.Sprintf("Weibull(k=%.2f, λ=%.0f h)", fit.Shape, fit.Scale)},
			{"test predictions scored", fmt.Sprintf("%d", n)},
			{"Brier score, worst-case envelope", f3(brierBase)},
			{"Brier score, hazard-refined", f3(brierRefined)},
			{"improvement", pct(1 - brierRefined/math.Max(brierBase, 1e-12))},
		},
		Notes: []string{
			"lower Brier is better; the refined prognostic conditions on unit age through the fitted hazard, which the grade-quantized worst-case envelope cannot.",
		},
	}
	return res, nil
}
