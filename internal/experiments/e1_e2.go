package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/dempster"
	"repro/internal/fusion"
	"repro/internal/proto"
)

// E1DempsterWorkedExample reproduces the §5.3 worked example: "given a
// belief of 40% that A will occur and another belief of 75% that B or C
// will occur, it will [be] concluded that A is 14% likely, 'B or C' is 64%
// likely and there is 22% of belief assigned to unknown possibilities."
func E1DempsterWorkedExample(seed int64) (*Result, error) {
	frame := dempster.MustFrame("A", "B", "C")
	a, err := frame.Hypothesis("A")
	if err != nil {
		return nil, err
	}
	bc, err := frame.SetOf("B", "C")
	if err != nil {
		return nil, err
	}
	m1, err := dempster.SimpleSupport(frame, a, 0.40)
	if err != nil {
		return nil, err
	}
	m2, err := dempster.SimpleSupport(frame, bc, 0.75)
	if err != nil {
		return nil, err
	}
	comb, conflict, err := dempster.Combine(m1, m2)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:         "E1",
		Title:      "Dempster-Shafer combination, §5.3 worked example",
		PaperClaim: "Bel(A)=0.40 ⊕ Bel(B∨C)=0.75 → A 14%, B∨C 64%, unknown 22%",
		Header:     []string{"hypothesis", "paper", "measured", "exact"},
		Rows: [][]string{
			{"A", "14%", pct(comb.Get(a)), "0.10/0.70"},
			{"B∨C", "64%", pct(comb.Get(bc)), "0.45/0.70"},
			{"unknown (Θ)", "22%", pct(comb.Unknown()), "0.15/0.70"},
			{"conflict K", "—", pct(conflict), "0.40×0.75"},
		},
		Notes: []string{
			"exact masses: 14.29%, 64.29%, 21.43%; the paper rounds its three numbers to sum to 100.",
		},
	}
	return res, nil
}

const monthSeconds = 30 * 86400.0

// E2PrognosticFusion reproduces both §5.4 worked examples of conservative
// prognostic fusion.
func E2PrognosticFusion(seed int64) (*Result, error) {
	base := proto.PrognosticVector{
		{Probability: 0.01, HorizonSeconds: 3 * monthSeconds},
		{Probability: 0.5, HorizonSeconds: 4 * monthSeconds},
		{Probability: 0.99, HorizonSeconds: 5 * monthSeconds},
	}
	weak := proto.PrognosticVector{{Probability: 0.12, HorizonSeconds: 4.5 * monthSeconds}}
	strong := proto.PrognosticVector{{Probability: 0.95, HorizonSeconds: 4.5 * monthSeconds}}

	fusedWeak, err := fusion.FuseConservative(base, weak)
	if err != nil {
		return nil, err
	}
	fusedStrong, err := fusion.FuseConservative(base, strong)
	if err != nil {
		return nil, err
	}
	at := func(v proto.PrognosticVector, months float64) float64 {
		return v.ProbabilityAt(time.Duration(months * monthSeconds * float64(time.Second)))
	}
	res := &Result{
		ID:         "E2",
		Title:      "Conservative prognostic fusion, §5.4 worked examples",
		PaperClaim: "((3mo,.01)(4mo,.5)(5mo,.99)) + ((4.5mo,.12)) → ignore second; + ((4.5mo,.95)) → second dominates, earlier demise",
		Header:     []string{"months", "base curve", "+weak(0.12@4.5)", "+strong(0.95@4.5)"},
	}
	for _, m := range []float64{3, 3.5, 4, 4.5, 5} {
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%.1f", m), f3(at(base, m)), f3(at(fusedWeak, m)), f3(at(fusedStrong, m)),
		})
	}
	// Demise times (time to 99% failure probability).
	maxH := time.Duration(8 * monthSeconds * float64(time.Second))
	tBase, _ := base.TimeToProbability(0.99, maxH)
	tStrong, _ := fusedStrong.TimeToProbability(0.99, maxH)
	identical := true
	for m := 3.0; m <= 5.0; m += 0.125 {
		if math.Abs(at(base, m)-at(fusedWeak, m)) > 1e-9 {
			identical = false
			break
		}
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("weak report ignored (fused curve identical to base): %v", identical),
		fmt.Sprintf("time to P=0.99: base %.2f months, with dominating report %.2f months (earlier demise: %v)",
			tBase.Hours()/24/30, tStrong.Hours()/24/30, tStrong < tBase),
	)
	return res, nil
}
