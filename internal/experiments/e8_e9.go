package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/bayes"
	"repro/internal/chiller"
	"repro/internal/dempster"
	"repro/internal/fusion"
)

// E8GroupAblation reproduces the §5.3 design argument for logical failure
// groups: plain single-frame Dempster-Shafer "assumes that any one failure
// precludes any other failures. However this is not the case in CBM, there
// can, in fact, be several failures at one time." Three genuinely
// concurrent independent faults are reported; grouped fusion keeps all
// three believed while the naive global frame forces them to compete.
func E8GroupAblation(seed int64) (*Result, error) {
	groups := fusion.Groups{}
	for name, faults := range chiller.FaultGroups() {
		for _, f := range faults {
			groups[name] = append(groups[name], f.String())
		}
	}
	grouped, err := fusion.NewDiagnosticFuser(groups)
	if err != nil {
		return nil, err
	}
	var all []string
	for _, conds := range groups {
		all = append(all, conds...)
	}
	naive, err := fusion.NewNaiveFuser(all)
	if err != nil {
		return nil, err
	}
	// Concurrent independent faults from three different groups, each
	// reported three times with belief 0.9 (reinforcing sources).
	concurrent := []string{
		chiller.MotorRotorBar.String(),  // electrical
		chiller.MotorImbalance.String(), // rotating-structural
		chiller.GearToothWear.String(),  // gearing
	}
	for _, cond := range concurrent {
		for i := 0; i < 3; i++ {
			if _, err := grouped.AddReport("chiller/1", cond, 0.9); err != nil {
				return nil, err
			}
			if _, err := naive.AddReport("chiller/1", cond, 0.9); err != nil {
				return nil, err
			}
		}
	}
	res := &Result{
		ID:         "E8",
		Title:      "Logical failure groups vs naive single-frame DS (ablation)",
		PaperClaim: "groups avoid assuming mutual exclusivity; several concurrent failures stay concurrently suspect",
		Header:     []string{"concurrent fault", "group", "grouped Bel", "naive Bel"},
	}
	for _, cond := range concurrent {
		g, err := grouped.GroupOf(cond)
		if err != nil {
			return nil, err
		}
		gb, err := grouped.Belief("chiller/1", cond)
		if err != nil {
			return nil, err
		}
		nb, err := naive.Belief("chiller/1", cond)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{cond, g, f3(gb), f3(nb)})
	}
	// In-group behaviour is unchanged: conflicting same-group reports still
	// share probability.
	if _, err := grouped.AddReport("chiller/2", chiller.MotorImbalance.String(), 0.8); err != nil {
		return nil, err
	}
	if _, err := grouped.AddReport("chiller/2", chiller.MotorMisalignment.String(), 0.8); err != nil {
		return nil, err
	}
	bi, _ := grouped.Belief("chiller/2", chiller.MotorImbalance.String())
	res.Notes = append(res.Notes,
		fmt.Sprintf("in-group conflict still suppresses: two conflicting 0.8 reports in one group → Bel %.3f each", bi),
		"grouped fusion keeps all three independent faults near certainty; the naive frame caps each well below it.")
	return res, nil
}

// E9DSvsBayes measures the §5.3/§10.1 trade-off: Dempster-Shafer "was
// chosen over other approaches like Bayes Nets because they require prior
// estimates of the conditional probability relating two failures. The data
// is not yet available" — while §10.1 expects Bayes nets to win "when
// causal relations and a priori relationships can be teased out of
// historical data."
//
// Ground truth is a naive-Bayes causal model: a hidden fault drives three
// noisy knowledge sources. The DS fuser needs no priors (fixed source
// believability); the Bayes net estimates its CPTs from N historical
// episodes. Accuracy is plotted against N.
func E9DSvsBayes(seed int64) (*Result, error) {
	rng := rand.New(rand.NewSource(seed + 7))
	faults := []string{"imbalance", "misalignment", "bearing", "looseness"}
	const numSources = 3
	// True model: uniform fault prior; each source reports the true fault
	// with probability 0.7, otherwise a uniformly wrong one.
	const sourceAccuracy = 0.7
	sample := func() (string, []string) {
		truth := faults[rng.Intn(len(faults))]
		obs := make([]string, numSources)
		for s := range obs {
			if rng.Float64() < sourceAccuracy {
				obs[s] = truth
			} else {
				for {
					o := faults[rng.Intn(len(faults))]
					if o != truth {
						obs[s] = o
						break
					}
				}
			}
		}
		return truth, obs
	}

	// DS diagnosis: combine SimpleSupport(obs_s, belief=0.6) per source,
	// pick the highest-belief singleton. The 0.6 is a generic "sources are
	// usually right" figure — exactly the no-priors regime.
	frame := dempster.MustFrame(faults...)
	dsDiagnose := func(obs []string) (string, error) {
		acc := dempster.VacuousMass(frame)
		for _, o := range obs {
			h, err := frame.Hypothesis(o)
			if err != nil {
				return "", err
			}
			ev, err := dempster.SimpleSupport(frame, h, 0.6)
			if err != nil {
				return "", err
			}
			next, _, err := dempster.Combine(acc, ev)
			if err != nil {
				return "", err
			}
			acc = next
		}
		best, bestBel := "", -1.0
		for _, f := range faults {
			h, _ := frame.Hypothesis(f)
			if b := acc.Belief(h); b > bestBel {
				best, bestBel = f, b
			}
		}
		return best, nil
	}

	// Bayes diagnosis with CPTs estimated from n training episodes
	// (Laplace-smoothed), exact posterior via variable elimination.
	buildNet := func(n int) (*bayes.Network, error) {
		counts := make([]map[string]map[string]int, numSources)
		for s := range counts {
			counts[s] = map[string]map[string]int{}
			for _, f := range faults {
				counts[s][f] = map[string]int{}
			}
		}
		prior := map[string]int{}
		for i := 0; i < n; i++ {
			truth, obs := sample()
			prior[truth]++
			for s, o := range obs {
				counts[s][truth][o]++
			}
		}
		net := bayes.NewNetwork()
		if err := net.AddVariable(bayes.Variable{Name: "fault", States: faults}); err != nil {
			return nil, err
		}
		priorRow := make([]float64, len(faults))
		for i, f := range faults {
			priorRow[i] = float64(prior[f]+1) / float64(n+len(faults))
		}
		if err := net.SetCPT("fault", [][]float64{normalize(priorRow)}); err != nil {
			return nil, err
		}
		for s := 0; s < numSources; s++ {
			name := fmt.Sprintf("source%d", s)
			if err := net.AddVariable(bayes.Variable{Name: name, States: faults}, "fault"); err != nil {
				return nil, err
			}
			rows := make([][]float64, len(faults))
			for fi, f := range faults {
				row := make([]float64, len(faults))
				total := 0
				for _, c := range counts[s][f] {
					total += c
				}
				for oi, o := range faults {
					row[oi] = float64(counts[s][f][o]+1) / float64(total+len(faults))
				}
				rows[fi] = normalize(row)
			}
			if err := net.SetCPT(name, rows); err != nil {
				return nil, err
			}
		}
		if err := net.Compile(); err != nil {
			return nil, err
		}
		return net, nil
	}
	bayesDiagnose := func(net *bayes.Network, obs []string) (string, error) {
		ev := bayes.Evidence{}
		for s, o := range obs {
			ev[fmt.Sprintf("source%d", s)] = o
		}
		post, err := net.Query("fault", ev)
		if err != nil {
			return "", err
		}
		best, bestP := "", -1.0
		for f, p := range post {
			if p > bestP {
				best, bestP = f, p
			}
		}
		return best, nil
	}

	const testEpisodes = 1500
	type testCase struct {
		truth string
		obs   []string
	}
	tests := make([]testCase, testEpisodes)
	for i := range tests {
		truth, obs := sample()
		tests[i] = testCase{truth, obs}
	}
	dsCorrect := 0
	for _, tc := range tests {
		got, err := dsDiagnose(tc.obs)
		if err != nil {
			return nil, err
		}
		if got == tc.truth {
			dsCorrect++
		}
	}
	dsAcc := float64(dsCorrect) / testEpisodes

	res := &Result{
		ID:         "E9",
		Title:      "Dempster-Shafer (no priors) vs Bayes net (learned priors)",
		PaperClaim: "DS chosen because conditional-probability data 'is not yet available'; Bayes nets promising once historical data exists (§10.1)",
		Header:     []string{"historical episodes", "Bayes accuracy", "DS accuracy (fixed, no priors)"},
	}
	for _, n := range []int{5, 20, 100, 1000, 10000} {
		net, err := buildNet(n)
		if err != nil {
			return nil, err
		}
		correct := 0
		for _, tc := range tests {
			got, err := bayesDiagnose(net, tc.obs)
			if err != nil {
				return nil, err
			}
			if got == tc.truth {
				correct++
			}
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", n), pct(float64(correct) / testEpisodes), pct(dsAcc),
		})
	}
	res.Notes = append(res.Notes,
		"with scarce history the learned Bayes net is no better than prior-free DS; with ample history it matches or exceeds it — the crossover the paper's phasing anticipates.")
	return res, nil
}

func normalize(row []float64) []float64 {
	var sum float64
	for _, v := range row {
		sum += v
	}
	if sum == 0 {
		return row
	}
	for i := range row {
		row[i] /= sum
	}
	return row
}
