package experiments

import (
	"testing"
	"time"
)

// TestStopwatchInjectable pins the regression class fixed by the noclock
// sweep: experiment timing goes through the package's injectable stopwatch
// (var now), not ambient time.Now, so tests can make elapsed time
// deterministic.
func TestStopwatchInjectable(t *testing.T) {
	base := time.Unix(1000, 0)
	calls := 0
	old := now
	now = func() time.Time {
		calls++
		return base.Add(time.Duration(calls) * time.Second)
	}
	defer func() { now = old }()

	start := stopwatch()
	if d := lap(start); d != time.Second {
		t.Fatalf("lap = %v, want exactly 1s from the injected clock", d)
	}
	if calls != 2 {
		t.Fatalf("stopwatch+lap consulted the clock %d times, want 2", calls)
	}
}
