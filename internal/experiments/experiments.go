// Package experiments implements the per-experiment reproduction harness
// indexed in DESIGN.md: every behavioural figure and quantitative claim in
// the paper has a function here that regenerates it as a printable table.
// cmd/mprosbench prints them; the root bench_test.go wraps them as Go
// benchmarks; EXPERIMENTS.md records paper-vs-measured for each.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Result is one experiment's regenerated table.
type Result struct {
	// ID is the experiment id from DESIGN.md (E1..E13).
	ID string
	// Title summarizes what is reproduced.
	Title string
	// PaperClaim quotes or paraphrases what the paper reports.
	PaperClaim string
	// Header and Rows form the regenerated table.
	Header []string
	Rows   [][]string
	// Notes carry measured-vs-paper commentary.
	Notes []string
}

// Render formats the result as an aligned text table.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if r.PaperClaim != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.PaperClaim)
	}
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner is an experiment entry point. Seed makes randomized workloads
// reproducible; implementations that are deterministic ignore it.
type Runner func(seed int64) (*Result, error)

// Registry maps experiment ids to runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"E1":  E1DempsterWorkedExample,
		"E2":  E2PrognosticFusion,
		"E3":  E3StictionDetect,
		"E4":  E4SBFRFootprintAndCycle,
		"E5":  E5ExpertAgreement,
		"E6":  E6SeverityMapping,
		"E7":  E7IngestThroughput,
		"E8":  E8GroupAblation,
		"E9":  E9DSvsBayes,
		"E10": E10Figure2Browser,
		"E11": E11EventLatency,
		"E12": E12HazardRefinement,
		"E13": E13HistorianThroughput,
	}
}

// IDs returns the experiment ids in order.
func IDs() []string {
	reg := Registry()
	out := make([]string, 0, len(reg))
	for id := range reg {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		// Numeric sort on the suffix.
		var a, b int
		fmt.Sscanf(out[i], "E%d", &a)
		fmt.Sscanf(out[j], "E%d", &b)
		return a < b
	})
	return out
}

func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// now is the wall-clock source behind the experiment stopwatches. Timing in
// this package measures host throughput for reported tables (E3/E13); it is
// never fed back into simulated state, so determinism of the experiment
// outputs is preserved. Tests may swap it to verify timing plumbing.
var now = time.Now //lint:allow noclock wall-clock stopwatch for reported benchmark timings only, never simulation input

// stopwatch marks a start instant for elapsed-time measurement.
func stopwatch() time.Time { return now() }

// lap returns the wall time since a stopwatch mark. Both instants come
// from now(), so the monotonic reading is used when available.
func lap(since time.Time) time.Duration { return now().Sub(since) }
