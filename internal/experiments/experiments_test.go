package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsRun executes every registered experiment and validates
// basic table structure — the smoke layer below the claim-specific checks.
func TestAllExperimentsRun(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			run := Registry()[id]
			res, err := run(1)
			if err != nil {
				t.Fatal(err)
			}
			if res.ID != id {
				t.Errorf("result id %q", res.ID)
			}
			if res.Title == "" || len(res.Header) == 0 || len(res.Rows) == 0 {
				t.Errorf("incomplete result: %+v", res)
			}
			text := res.Render()
			if !strings.Contains(text, id) {
				t.Error("render missing id")
			}
		})
	}
	if len(IDs()) != 13 {
		t.Errorf("registry has %d experiments, want 13", len(IDs()))
	}
}

func cell(t *testing.T, res *Result, rowPrefix string, col int) string {
	t.Helper()
	for _, row := range res.Rows {
		if strings.HasPrefix(row[0], rowPrefix) {
			return row[col]
		}
	}
	t.Fatalf("no row with prefix %q in %v", rowPrefix, res.Rows)
	return ""
}

func TestE1MatchesPaperNumbers(t *testing.T) {
	res, err := E1DempsterWorkedExample(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := cell(t, res, "A", 2); got != "14.3%" {
		t.Errorf("A measured %q", got)
	}
	if got := cell(t, res, "B∨C", 2); got != "64.3%" {
		t.Errorf("B∨C measured %q", got)
	}
	if got := cell(t, res, "unknown", 2); got != "21.4%" {
		t.Errorf("unknown measured %q", got)
	}
}

func TestE2NotesConfirmBothExamples(t *testing.T) {
	res, err := E2PrognosticFusion(1)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(res.Notes, "\n")
	if !strings.Contains(joined, "identical to base): true") {
		t.Errorf("weak-report example not confirmed: %s", joined)
	}
	if !strings.Contains(joined, "earlier demise: true") {
		t.Errorf("dominating-report example not confirmed: %s", joined)
	}
}

func TestE3AllScenariosMatch(t *testing.T) {
	res, err := E3StictionDetect(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row[2] != row[3] {
			t.Errorf("scenario %q: flagged=%s expected=%s", row[0], row[2], row[3])
		}
	}
	for _, n := range res.Notes {
		if strings.Contains(n, "MISMATCH") {
			t.Error(n)
		}
	}
}

func TestE4WithinPaperBounds(t *testing.T) {
	res, err := E4SBFRFootprintAndCycle(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if strings.Contains(row[0], "bytecode + runtime") || strings.Contains(row[0], "cycle period") {
			if !strings.Contains(row[2], "within bound: true") {
				t.Errorf("%s: %s", row[0], row[2])
			}
		}
	}
}

func TestE5AgreementAboveNinety(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus generation is slow")
	}
	res, err := E5ExpertAgreement(1)
	if err != nil {
		t.Fatal(err)
	}
	raw := cell(t, res, "top-call agreement", 1)
	v, err := strconv.ParseFloat(strings.TrimSuffix(raw, "%"), 64)
	if err != nil {
		t.Fatal(err)
	}
	if v < 90 {
		t.Errorf("agreement %.1f%% (paper claims >95%%)", v)
	}
}

func TestE7MeetsHardwareRate(t *testing.T) {
	res, err := E7IngestThroughput(1)
	if err != nil {
		t.Fatal(err)
	}
	raw := cell(t, res, "headroom", 1)
	v, err := strconv.ParseFloat(strings.TrimSuffix(raw, "×"), 64)
	if err != nil {
		t.Fatal(err)
	}
	if v < 1 {
		t.Errorf("ingest path below the 4×40kHz hardware requirement (headroom %s)", raw)
	}
}

func TestE8GroupedBeatsNaive(t *testing.T) {
	res, err := E8GroupAblation(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		grouped, err1 := strconv.ParseFloat(row[2], 64)
		naive, err2 := strconv.ParseFloat(row[3], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("bad row %v", row)
		}
		if grouped < 0.99 {
			t.Errorf("%s: grouped belief %g should stay near 1", row[0], grouped)
		}
		if naive >= grouped {
			t.Errorf("%s: naive %g should be below grouped %g", row[0], naive, grouped)
		}
	}
}

func TestE9BayesImprovesWithData(t *testing.T) {
	if testing.Short() {
		t.Skip("episode generation is slow")
	}
	res, err := E9DSvsBayes(1)
	if err != nil {
		t.Fatal(err)
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	first := parse(res.Rows[0][1])
	last := parse(res.Rows[len(res.Rows)-1][1])
	ds := parse(res.Rows[0][2])
	if last <= first {
		t.Errorf("Bayes accuracy did not improve with data: %g -> %g", first, last)
	}
	if last < ds-2 {
		t.Errorf("well-trained Bayes (%g%%) should at least match DS (%g%%)", last, ds)
	}
}

func TestE10RendersFigure2State(t *testing.T) {
	res, err := E10Figure2Browser(1)
	if err != nil {
		t.Fatal(err)
	}
	var all strings.Builder
	for _, row := range res.Rows {
		all.WriteString(row[0])
		all.WriteByte('\n')
	}
	if !strings.Contains(all.String(), "6 condition reports from 4 knowledge sources") {
		t.Errorf("browser state wrong:\n%s", all.String())
	}
}

func TestE11OneFusionPerReport(t *testing.T) {
	res, err := E11EventLatency(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := cell(t, res, "events per report", 1); got != "1.00" {
		t.Errorf("events per report %s, want exactly 1.00 (no polling, no double fusion)", got)
	}
}

func TestE12RefinementImproves(t *testing.T) {
	res, err := E12HazardRefinement(1)
	if err != nil {
		t.Fatal(err)
	}
	base, err := strconv.ParseFloat(cell(t, res, "Brier score, worst-case", 1), 64)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := strconv.ParseFloat(cell(t, res, "Brier score, hazard-refined", 1), 64)
	if err != nil {
		t.Fatal(err)
	}
	if refined >= base {
		t.Errorf("refined Brier %g not better than baseline %g", refined, base)
	}
}
