package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/chiller"
	"repro/internal/dc"
	"repro/internal/proto"
	"repro/internal/relstore"
	"repro/internal/vibration"
)

// E5ExpertAgreement reproduces the §6.1 accuracy claim: "it was found that
// the system exceeds 95% agreement with human expert analysts for machinery
// aboard the Nimitz class ships." Ground truth substitutes for the analyst:
// a labelled corpus of seeded-fault plants, measured as top-call agreement.
func E5ExpertAgreement(seed int64) (*Result, error) {
	rng := rand.New(rand.NewSource(seed + 41))
	var vibFaults []chiller.Fault
	for _, f := range chiller.AllFaults() {
		if f.IsVibrational() {
			vibFaults = append(vibFaults, f)
		}
	}
	const trials = 300
	agree := 0
	missed := 0
	confusion := map[string]int{}
	healthyFalsePositives := 0
	const healthyTrials = 60

	for i := 0; i < trials; i++ {
		truth := vibFaults[rng.Intn(len(vibFaults))]
		sev := 0.5 + 0.5*rng.Float64()
		load := 0.5 + 0.5*rng.Float64()
		cfg := chiller.DefaultConfig()
		cfg.Seed = seed + int64(1000+i)
		plant, err := chiller.New(cfg)
		if err != nil {
			return nil, err
		}
		if err := plant.SetFault(truth, sev); err != nil {
			return nil, err
		}
		if err := plant.SetLoad(load); err != nil {
			return nil, err
		}
		engine := vibration.NewEngine(cfg, 0.15)
		diags, err := engine.DiagnosePlant(plant, 16384)
		if err != nil {
			return nil, err
		}
		switch {
		case len(diags) == 0:
			missed++
		case diags[0].Condition == truth.String():
			agree++
		default:
			confusion[truth.String()+" → "+diags[0].Condition]++
		}
	}
	for i := 0; i < healthyTrials; i++ {
		cfg := chiller.DefaultConfig()
		cfg.Seed = seed + int64(90000+i)
		plant, err := chiller.New(cfg)
		if err != nil {
			return nil, err
		}
		if err := plant.SetLoad(0.3 + 0.7*rng.Float64()); err != nil {
			return nil, err
		}
		engine := vibration.NewEngine(cfg, 0.15)
		diags, err := engine.DiagnosePlant(plant, 16384)
		if err != nil {
			return nil, err
		}
		if len(diags) > 0 {
			healthyFalsePositives++
		}
	}

	rate := float64(agree) / trials
	res := &Result{
		ID:         "E5",
		Title:      "Vibration expert system agreement with ground truth",
		PaperClaim: "exceeds 95% agreement with human expert analysts (Nimitz-class study)",
		Header:     []string{"metric", "value"},
		Rows: [][]string{
			{"seeded-fault trials", fmt.Sprintf("%d (severity 0.5–1.0, load 0.5–1.0)", trials)},
			{"top-call agreement", pct(rate)},
			{"missed (no call)", fmt.Sprintf("%d", missed)},
			{"wrong top call", fmt.Sprintf("%d", trials-agree-missed)},
			{"healthy trials", fmt.Sprintf("%d", healthyTrials)},
			{"healthy false positives", fmt.Sprintf("%d", healthyFalsePositives)},
		},
	}
	for pair, n := range confusion {
		res.Rows = append(res.Rows, []string{"confusion: " + pair, fmt.Sprintf("%d", n)})
	}
	res.Notes = append(res.Notes, fmt.Sprintf("paper claims >95%%; measured %.1f%% against seeded ground truth", 100*rate))
	return res, nil
}

// E6SeverityMapping reproduces the §6.1 severity pipeline: "a numerical
// severity score along with the fault diagnosis ... interpreted through
// empirical methods which map it into four gradient categories ... Slight,
// Moderate, Serious and Extreme and correspond to expected lengths of time
// to failure described loosely as: no foreseeable failure, failure in
// months, weeks, and days."
func E6SeverityMapping(seed int64) (*Result, error) {
	res := &Result{
		ID:         "E6",
		Title:      "Severity score → gradient category → time-to-failure mapping",
		PaperClaim: "Slight/Moderate/Serious/Extreme ↔ no foreseeable failure / months / weeks / days",
		Header:     []string{"injected severity", "estimated", "grade", "horizon class", "t(P=0.5) from worst-case vector"},
	}
	for _, inject := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		cfg := chiller.DefaultConfig()
		cfg.Seed = seed + int64(inject*1000)
		plant, err := chiller.New(cfg)
		if err != nil {
			return nil, err
		}
		if err := plant.SetFault(chiller.MotorImbalance, inject); err != nil {
			return nil, err
		}
		engine := vibration.NewEngine(cfg, 0.0)
		diags, err := engine.DiagnosePlant(plant, 16384)
		if err != nil {
			return nil, err
		}
		est := 0.0
		grade := proto.SeverityNone
		for _, d := range diags {
			if d.Condition == chiller.MotorImbalance.String() {
				est = d.Severity
				grade = d.Grade
			}
		}
		horizonClass := map[proto.SeverityGrade]string{
			proto.SeverityNone:     "—",
			proto.SeveritySlight:   "no foreseeable failure",
			proto.SeverityModerate: "failure in months",
			proto.SeveritySerious:  "failure in weeks",
			proto.SeverityExtreme:  "failure in days",
		}[grade]
		tHalf := "—"
		if v := vibration.WorstCasePrognostic(grade, est); len(v) > 0 {
			if d, ok := v.TimeToProbability(0.5, 2*365*24*time.Hour); ok {
				tHalf = fmt.Sprintf("%.1f d", d.Hours()/24)
			}
		}
		res.Rows = append(res.Rows, []string{
			f2(inject), f2(est), grade.String(), horizonClass, tHalf,
		})
	}
	res.Notes = append(res.Notes,
		"estimated severity tracks injected severity monotonically; grades escalate through the four §6.1 categories and the worst-case prognostic horizon shortens accordingly.")
	return res, nil
}

// E7IngestThroughput reproduces the §1 scale framing: "thousands of
// embedded processors will collect millions of data points per second".
// One DC's acquisition path (32 MUX channels through the RMS detectors) is
// measured in samples per second.
func E7IngestThroughput(seed int64) (*Result, error) {
	cfg := chiller.DefaultConfig()
	cfg.Seed = seed
	plant, err := chiller.New(cfg)
	if err != nil {
		return nil, err
	}
	d, err := dc.New(dc.DefaultConfig("dc-bench", "chiller/1"), plant, relstore.NewMemory(),
		proto.SinkFunc(func(*proto.Report) error { return nil }))
	if err != nil {
		return nil, err
	}
	const frameLen = 4096
	const rounds = 60
	start := stopwatch()
	samples, err := d.IngestThroughput(frameLen, rounds)
	if err != nil {
		return nil, err
	}
	elapsed := lap(start)
	rate := float64(samples) / elapsed.Seconds()

	// The §8 hardware requirement: 4 channels at >40 kHz simultaneously.
	required := 4 * 40000.0
	res := &Result{
		ID:         "E7",
		Title:      "DC acquisition path throughput (32-channel MUX + RMS detectors)",
		PaperClaim: "4-channel DSP card sampling above 40 kHz; fleet-wide millions of points/second",
		Header:     []string{"metric", "value"},
		Rows: [][]string{
			{"samples processed", fmt.Sprintf("%d", samples)},
			{"elapsed", elapsed.Round(time.Microsecond).String()},
			{"throughput", fmt.Sprintf("%.1f Msamples/s", rate/1e6)},
			{"required (4ch × 40 kHz)", fmt.Sprintf("%.2f Msamples/s", required/1e6)},
			{"headroom", fmt.Sprintf("%.0f×", rate/required)},
			{"DCs for 'millions of points/s' (10M)", fmt.Sprintf("%.2f", 1e7/rate)},
		},
	}
	return res, nil
}
