package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/historian"
)

// E13HistorianThroughput measures the embedded historian against the §4.6
// data-management requirement: the DC must archive at acquisition rate and
// the PDME display must read month-scale trends interactively. Targets:
// single-writer scalar ingest ≥ 1M samples/s, and a rollup-tier query over
// 24 h of 1 Hz data in < 5 ms.
func E13HistorianThroughput(seed int64) (*Result, error) {
	store, err := historian.Open(historian.Options{}) // in-memory: measures the engine, not the disk
	if err != nil {
		return nil, err
	}
	defer store.Close()
	rng := rand.New(rand.NewSource(seed))
	t0 := time.Date(1998, 8, 1, 0, 0, 0, 0, time.UTC)

	// Ingest: one writer, batched appends of jittered scalars (the DC's
	// process-scan shape), rollup tier maintained inline.
	const ingestN = 2_000_000
	if err := store.EnsureChannel(historian.ChannelConfig{
		Name:  "bench/ingest",
		Tiers: []time.Duration{time.Minute},
	}); err != nil {
		return nil, err
	}
	batch := make([]historian.Sample, 1024)
	written := 0
	start := stopwatch()
	for written < ingestN {
		n := len(batch)
		if ingestN-written < n {
			n = ingestN - written
		}
		for i := 0; i < n; i++ {
			batch[i] = historian.Sample{
				At:    t0.Add(time.Duration(written+i) * time.Millisecond),
				Value: 22 + rng.Float64(),
			}
		}
		if err := store.AppendBatch("bench/ingest", batch[:n]); err != nil {
			return nil, err
		}
		written += n
	}
	ingestElapsed := lap(start)
	ingestRate := float64(ingestN) / ingestElapsed.Seconds()

	// Query: 24 h of 1 Hz data, read back at the minute rollup tier (1440
	// buckets) and as a raw range scan, median of repeated runs.
	const day = 24 * 60 * 60
	if err := store.EnsureChannel(historian.ChannelConfig{
		Name:  "bench/day",
		Tiers: []time.Duration{time.Minute},
	}); err != nil {
		return nil, err
	}
	for i := 0; i < day; i += 4096 {
		n := 4096
		if day-i < n {
			n = day - i
		}
		for j := 0; j < n; j++ {
			batch2 := historian.Sample{At: t0.Add(time.Duration(i+j) * time.Second),
				Value: math.Sin(float64(i+j) / 300)}
			if err := store.Append("bench/day", batch2.At, batch2.Value); err != nil {
				return nil, err
			}
		}
	}
	timeQuery := func(run func() (int, error)) (time.Duration, int, error) {
		const reps = 9
		times := make([]time.Duration, reps)
		var count int
		for r := 0; r < reps; r++ {
			qs := stopwatch()
			n, err := run()
			if err != nil {
				return 0, 0, err
			}
			times[r] = lap(qs)
			count = n
		}
		// Median.
		for i := 1; i < reps; i++ {
			for j := i; j > 0 && times[j] < times[j-1]; j-- {
				times[j], times[j-1] = times[j-1], times[j]
			}
		}
		return times[reps/2], count, nil
	}
	rollupLat, rollupN, err := timeQuery(func() (int, error) {
		rolls, err := store.QueryRollup("bench/day", time.Minute, time.Time{}, time.Time{})
		return len(rolls), err
	})
	if err != nil {
		return nil, err
	}
	rawLat, rawN, err := timeQuery(func() (int, error) {
		it, err := store.Query("bench/day", t0, t0.Add(24*time.Hour))
		if err != nil {
			return 0, err
		}
		n := 0
		for it.Next() {
			n++
		}
		return n, nil
	})
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:    "E13",
		Title: "historian ingest throughput and query latency",
		PaperClaim: "§4.6: data management must archive at acquisition rate and serve " +
			"interactive trend displays; targets ≥1M samples/s ingest, rollup query of a 1 Hz day <5 ms",
		Header: []string{"measurement", "work", "result", "target", "met"},
		Rows: [][]string{
			{"scalar ingest (1 writer)", fmt.Sprintf("%d samples", ingestN),
				fmt.Sprintf("%.2fM samples/s", ingestRate/1e6), ">= 1M/s",
				fmt.Sprintf("%t", ingestRate >= 1e6)},
			{"rollup query (1 min tier)", fmt.Sprintf("%d buckets over 24h@1Hz", rollupN),
				rollupLat.String(), "< 5ms", fmt.Sprintf("%t", rollupLat < 5*time.Millisecond)},
			{"raw range scan", fmt.Sprintf("%d samples over 24h@1Hz", rawN),
				rawLat.String(), "(reference)", "-"},
		},
		Notes: []string{
			fmt.Sprintf("ingest elapsed %v; batched 1024-sample appends with a live 1-minute rollup tier", ingestElapsed),
			"query latencies are medians of 9 runs on an in-memory store (sealed segments + head)",
		},
	}
	if rollupN != 1440 {
		res.Notes = append(res.Notes, fmt.Sprintf("WARN: expected 1440 rollup buckets, got %d", rollupN))
	}
	return res, nil
}
