package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/ema"
	"repro/internal/sbfr"
)

// E3StictionDetect reproduces Figure 3: the two-machine SBFR system that
// "counts the spikes that are not associated with a commanded position
// change (CPOS). When the count is greater than 4, a stiction condition is
// flagged."
func E3StictionDetect(seed int64) (*Result, error) {
	progs, err := sbfr.AssembleSystem(sbfr.EMASource, sbfr.EMAChannels)
	if err != nil {
		return nil, err
	}
	scenarios := []struct {
		name   string
		events []ema.Event
		ticks  int
		expect bool
	}{
		{"healthy: 12 commanded moves", ema.HealthyScenario(10, 12, 20), 300, false},
		{"4 uncommanded spikes (at threshold)", ema.StictionScenario(10, 4, 20), 200, false},
		{"6 uncommanded spikes", ema.StictionScenario(10, 6, 20), 200, true},
		{"mixed: 5 commands + 6 stiction spikes",
			ema.MergeEvents(ema.HealthyScenario(10, 5, 50), ema.StictionScenario(30, 6, 50)), 400, true},
	}
	res := &Result{
		ID:         "E3",
		Title:      "Figure 3 EMA stiction detection (spike + stiction machines)",
		PaperClaim: "stiction flagged after >4 uncommanded current spikes; machine sizes 229 B and 93 B",
		Header:     []string{"scenario", "spikes counted", "stiction flagged", "expected"},
	}
	for _, sc := range scenarios {
		sys, err := sbfr.NewSystem(sbfr.EMAChannels, progs)
		if err != nil {
			return nil, err
		}
		cfg := ema.DefaultConfig()
		cfg.Seed = seed
		sim, err := ema.NewSimulator(cfg, sc.events)
		if err != nil {
			return nil, err
		}
		flagged := false
		for i := 0; i < sc.ticks; i++ {
			s := sim.Step()
			if err := sys.Cycle([]float64{s.Current, s.CPOS}); err != nil {
				return nil, err
			}
			if st, _ := sys.Status("Stiction"); st != 0 {
				flagged = true
			}
		}
		count, _ := sys.LocalOf("Stiction", 0)
		res.Rows = append(res.Rows, []string{
			sc.name, fmt.Sprintf("%.0f", count), fmt.Sprintf("%v", flagged), fmt.Sprintf("%v", sc.expect),
		})
		if flagged != sc.expect {
			res.Notes = append(res.Notes, fmt.Sprintf("MISMATCH in scenario %q", sc.name))
		}
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"compiled sizes: Spike=%d B (paper 229 B), Stiction=%d B (paper 93 B)",
		progs[0].Size(), progs[1].Size()))
	return res, nil
}

// E4SBFRFootprintAndCycle reproduces the §6.3 embedded-footprint claims:
// "100 state machines operating in parallel and their interpreter can fit
// in less than 32K bytes" and "can cycle with a period of less than 4
// milliseconds"; "the interpreter that executes the SBFR system in the DCs
// is about 2000 bytes long."
func E4SBFRFootprintAndCycle(seed int64) (*Result, error) {
	// Build 100 machines: 50 copies of the Figure 3 pair, renamed.
	var src strings.Builder
	for i := 0; i < 50; i++ {
		pair := strings.ReplaceAll(sbfr.EMASource, "machine Spike", fmt.Sprintf("machine Spike%d", i))
		pair = strings.ReplaceAll(pair, "machine Stiction", fmt.Sprintf("machine Stiction%d", i))
		pair = strings.ReplaceAll(pair, "status.Spike", fmt.Sprintf("status.Spike%d", i))
		src.WriteString(pair)
		src.WriteByte('\n')
	}
	sys, err := sbfr.NewSystemFromSource(src.String(), sbfr.EMAChannels)
	if err != nil {
		return nil, err
	}
	if got := len(sys.MachineNames()); got != 100 {
		return nil, fmt.Errorf("expected 100 machines, assembled %d", got)
	}
	code := sys.FootprintBytes()
	ram := sys.RuntimeBytes()

	// Cycle-time measurement over a realistic input stream.
	cfg := ema.DefaultConfig()
	cfg.Seed = seed
	sim, err := ema.NewSimulator(cfg, ema.StictionScenario(5, 50, 11))
	if err != nil {
		return nil, err
	}
	const cycles = 20000
	buf := make([]float64, 2)
	in := make([]float64, 2)
	start := stopwatch()
	for i := 0; i < cycles; i++ {
		s := sim.Step()
		in[0], in[1] = s.Current, s.CPOS
		if err := sys.CycleInto(in, buf); err != nil {
			return nil, err
		}
	}
	perCycle := lap(start) / cycles

	res := &Result{
		ID:         "E4",
		Title:      "SBFR footprint and cycle period, 100 parallel machines",
		PaperClaim: "100 machines + interpreter < 32 KB; cycle period < 4 ms; interpreter ≈2000 B",
		Header:     []string{"metric", "paper bound", "measured"},
		Rows: [][]string{
			{"compiled bytecode, 100 machines", "(part of 32 KB)", fmt.Sprintf("%d B", code)},
			{"runtime state (locals+status)", "(part of 32 KB)", fmt.Sprintf("%d B", ram)},
			{"bytecode + runtime state", "< 32768 B", fmt.Sprintf("%d B (within bound: %v)", code+ram, code+ram < 32768)},
			{"cycle period, 100 machines", "< 4 ms", fmt.Sprintf("%v (within bound: %v)", perCycle, perCycle < 4*time.Millisecond)},
		},
		Notes: []string{
			"the paper's ≈2000 B interpreter is 68HC11-class machine code; the Go interpreter's code size is not comparable, so the footprint row counts the artifacts that scale with machine count (bytecode + runtime state), which is the quantity the 32 KB bound governs.",
		},
	}
	return res, nil
}
