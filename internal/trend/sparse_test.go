package trend

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/historian"
)

// Sparse and downsampled series are what the trend fitter actually sees in
// deployment: historian rollup means at day resolution, or a handful of
// surviving points after retention. These tests pin the fitter's behaviour
// on exactly those shapes.

func linSeries(t0 time.Time, slopePerHour float64, at []time.Duration, noise func(int) float64) []Point {
	pts := make([]Point, len(at))
	for i, d := range at {
		v := slopePerHour * d.Hours()
		if noise != nil {
			v += noise(i)
		}
		pts[i] = Point{At: t0.Add(d), Value: 0.1 + v}
	}
	return pts
}

// TestSparseIrregularSeries: three to five points with wildly irregular
// spacing (minutes to weeks apart) still recover the underlying slope.
func TestSparseIrregularSeries(t *testing.T) {
	t0 := time.Date(1998, 8, 1, 0, 0, 0, 0, time.UTC)
	gaps := []time.Duration{0, 7 * time.Minute, 26 * time.Hour, 9 * 24 * time.Hour, 21 * 24 * time.Hour}
	const slope = 0.001 // per hour
	pts := linSeries(t0, slope, gaps, nil)
	fit, err := TheilSen(pts)
	if err != nil {
		t.Fatal(err)
	}
	if got := fit.Slope * 3600; math.Abs(got-slope) > 1e-9 {
		t.Fatalf("slope %g/h, want %g/h", got, slope)
	}
	proj, err := ProjectPoints(pts, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if !proj.Reaches {
		t.Fatal("rising sparse series should reach threshold")
	}
	want := t0.Add(time.Duration(0.6 / slope * float64(time.Hour)))
	if d := proj.Crossing.Sub(want); math.Abs(d.Hours()) > 1 {
		t.Fatalf("crossing %v, want %v", proj.Crossing, want)
	}

	// Exactly three points is the documented minimum.
	if _, err := TheilSen(pts[:3]); err != nil {
		t.Fatalf("3-point fit refused: %v", err)
	}
	if _, err := TheilSen(pts[:2]); err == nil {
		t.Fatal("2-point fit accepted")
	}
}

// TestSparseOutlierRobustness: with only five sparse points, one sensor
// glitch must not swing the Theil-Sen slope the way it swings OLS.
func TestSparseOutlierRobustness(t *testing.T) {
	t0 := time.Date(1998, 8, 1, 0, 0, 0, 0, time.UTC)
	gaps := []time.Duration{0, 2 * 24 * time.Hour, 5 * 24 * time.Hour,
		11 * 24 * time.Hour, 14 * 24 * time.Hour}
	const slope = 0.002
	pts := linSeries(t0, slope, gaps, nil)
	pts[2].Value += 0.8 // glitch
	robust, err := TheilSen(pts)
	if err != nil {
		t.Fatal(err)
	}
	ols, err := OLS(pts)
	if err != nil {
		t.Fatal(err)
	}
	robustErr := math.Abs(robust.Slope*3600 - slope)
	olsErr := math.Abs(ols.Slope*3600 - slope)
	if robustErr > slope*0.5 {
		t.Fatalf("Theil-Sen slope off by %g/h on one glitch in five points", robustErr)
	}
	if olsErr < robustErr {
		t.Fatalf("OLS (%g/h err) beat Theil-Sen (%g/h err) on glitched data", olsErr, robustErr)
	}
}

// TestDownsampledRollupSeries: fitting day-bucket rollup means from a
// historian channel projects the same crossing as fitting the raw 1-per-
// 4h series — downsampling must not distort the trend.
func TestDownsampledRollupSeries(t *testing.T) {
	store, err := historian.Open(historian.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	const chName = "severity/motor|imbalance"
	if err := store.EnsureChannel(historian.ChannelConfig{
		Name:  chName,
		Tiers: []time.Duration{24 * time.Hour},
	}); err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(1998, 8, 1, 0, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewSource(3))
	const slope = 0.0008 // per hour: 0.1 → ~0.5 over 21 days
	var raw []Point
	for h := 0.0; h < 21*24; h += 4 {
		at := t0.Add(time.Duration(h * float64(time.Hour)))
		v := 0.1 + slope*h + 0.01*(rng.Float64()-0.5)
		if err := store.Append(chName, at, v); err != nil {
			t.Fatal(err)
		}
		raw = append(raw, Point{At: at, Value: v})
	}
	rolls, err := store.QueryRollup(chName, 24*time.Hour, time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rolls) != 21 {
		t.Fatalf("%d rollup buckets, want 21", len(rolls))
	}
	down := make([]Point, len(rolls))
	for i, r := range rolls {
		down[i] = Point{At: r.Start.Add(r.Dur / 2), Value: r.Mean()}
	}
	rawProj, err := ProjectPoints(raw, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	downProj, err := ProjectPoints(down, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if !rawProj.Reaches || !downProj.Reaches {
		t.Fatalf("projections should reach: raw=%t down=%t", rawProj.Reaches, downProj.Reaches)
	}
	// 126 raw points vs 21 bucket means: crossings agree within a day.
	if d := downProj.Crossing.Sub(rawProj.Crossing); math.Abs(d.Hours()) > 24 {
		t.Fatalf("downsampled crossing %v vs raw %v (Δ %v)",
			downProj.Crossing, rawProj.Crossing, d)
	}
	slopeRatio := downProj.Fit.Slope / rawProj.Fit.Slope
	if slopeRatio < 0.9 || slopeRatio > 1.1 {
		t.Fatalf("downsampled slope ratio %g outside [0.9,1.1]", slopeRatio)
	}
}

// TestFlatAndRecedingSparse: flat or falling sparse series never project a
// crossing, and duplicate-timestamp-only series are refused.
func TestFlatAndRecedingSparse(t *testing.T) {
	t0 := time.Date(1998, 8, 1, 0, 0, 0, 0, time.UTC)
	flat := []Point{
		{At: t0, Value: 0.3},
		{At: t0.Add(48 * time.Hour), Value: 0.3},
		{At: t0.Add(240 * time.Hour), Value: 0.3},
	}
	proj, err := ProjectPoints(flat, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if proj.Reaches {
		t.Fatal("flat series projected a crossing")
	}
	falling := []Point{
		{At: t0, Value: 0.5},
		{At: t0.Add(100 * time.Hour), Value: 0.4},
		{At: t0.Add(300 * time.Hour), Value: 0.2},
	}
	if proj, _ := ProjectPoints(falling, 0.6); proj.Reaches {
		t.Fatal("falling series projected a crossing")
	}
	same := []Point{{At: t0, Value: 1}, {At: t0, Value: 2}, {At: t0, Value: 3}}
	if _, err := TheilSen(same); err == nil {
		t.Fatal("single-instant series accepted")
	}
}
