package trend

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(1998, 8, 1, 0, 0, 0, 0, time.UTC)

func linearPoints(n int, slopePerHour, intercept, noise float64, rng *rand.Rand) []Point {
	out := make([]Point, n)
	for i := range out {
		at := t0.Add(time.Duration(i) * time.Hour)
		v := intercept + slopePerHour*float64(i)
		if rng != nil {
			v += rng.NormFloat64() * noise
		}
		out[i] = Point{At: at, Value: v}
	}
	return out
}

func TestTheilSenExactLine(t *testing.T) {
	pts := linearPoints(10, 0.05, 0.1, 0, nil)
	fit, err := TheilSen(pts)
	if err != nil {
		t.Fatal(err)
	}
	wantSlope := 0.05 / 3600 // per second
	if math.Abs(fit.Slope-wantSlope) > 1e-12 {
		t.Errorf("slope %g, want %g", fit.Slope, wantSlope)
	}
	if math.Abs(fit.Intercept-0.1) > 1e-9 {
		t.Errorf("intercept %g", fit.Intercept)
	}
	if fit.Residual > 1e-9 {
		t.Errorf("residual %g on exact line", fit.Residual)
	}
	// ValueAt reproduces the inputs.
	if got := fit.ValueAt(t0.Add(5 * time.Hour)); math.Abs(got-0.35) > 1e-9 {
		t.Errorf("ValueAt %g", got)
	}
	// Crossing time of 0.6: (0.6-0.1)/0.05 = 10 hours.
	cross, ok := fit.CrossingTime(0.6)
	if !ok {
		t.Fatal("should cross")
	}
	if want := t0.Add(10 * time.Hour); math.Abs(cross.Sub(want).Seconds()) > 1 {
		t.Errorf("crossing %v, want %v", cross, want)
	}
}

func TestTheilSenRobustToOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := linearPoints(30, 0.02, 0.2, 0.005, rng)
	// Inject three gross outliers (sensor glitches).
	pts[5].Value = 5
	pts[12].Value = -3
	pts[20].Value = 7
	ts, err := TheilSen(pts)
	if err != nil {
		t.Fatal(err)
	}
	ols, err := OLS(pts)
	if err != nil {
		t.Fatal(err)
	}
	wantSlope := 0.02 / 3600
	tsErr := math.Abs(ts.Slope - wantSlope)
	olsErr := math.Abs(ols.Slope - wantSlope)
	if tsErr > wantSlope*0.2 {
		t.Errorf("Theil-Sen slope error %g too large", tsErr)
	}
	if tsErr >= olsErr {
		t.Errorf("Theil-Sen (%g) should beat OLS (%g) under outliers", tsErr, olsErr)
	}
}

func TestOLSMatchesOnCleanData(t *testing.T) {
	pts := linearPoints(20, -0.01, 1.0, 0, nil)
	fit, err := OLS(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-(-0.01/3600)) > 1e-12 {
		t.Errorf("slope %g", fit.Slope)
	}
	// Receding trend never crosses a higher threshold.
	if _, ok := fit.CrossingTime(2.0); ok {
		t.Error("receding trend should not cross")
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := TheilSen(nil); err == nil {
		t.Error("empty")
	}
	if _, err := TheilSen(linearPoints(2, 1, 0, 0, nil)); err == nil {
		t.Error("two points")
	}
	same := []Point{{At: t0, Value: 1}, {At: t0, Value: 2}, {At: t0, Value: 3}}
	if _, err := TheilSen(same); err == nil {
		t.Error("single timestamp")
	}
	if _, err := OLS(same); err == nil {
		t.Error("OLS single timestamp")
	}
	if _, err := OLS(nil); err == nil {
		t.Error("OLS empty")
	}
}

func TestCrossingInPastReturnsOriginSide(t *testing.T) {
	// Upward trend already above threshold at origin: crossing dt < 0.
	pts := linearPoints(5, 0.1, 0.9, 0, nil)
	fit, err := TheilSen(pts)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fit.CrossingTime(0.5); ok {
		t.Error("crossing before origin should report not-ok")
	}
}

func TestTheilSenRecoversSlopeProperty(t *testing.T) {
	// Property: on noiseless lines with random slope/intercept the fit is
	// exact (within float tolerance).
	prop := func(rawSlope, rawIntercept float64, nRaw uint8) bool {
		if math.IsNaN(rawSlope) || math.IsInf(rawSlope, 0) ||
			math.IsNaN(rawIntercept) || math.IsInf(rawIntercept, 0) {
			return true
		}
		slope := math.Mod(rawSlope, 10)
		intercept := math.Mod(rawIntercept, 100)
		n := 3 + int(nRaw%40)
		pts := linearPoints(n, slope, intercept, 0, nil)
		fit, err := TheilSen(pts)
		if err != nil {
			return false
		}
		scale := math.Max(1, math.Abs(slope/3600))
		return math.Abs(fit.Slope-slope/3600) < 1e-9*scale &&
			math.Abs(fit.Intercept-intercept) < 1e-6*math.Max(1, math.Abs(intercept))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTracker(t *testing.T) {
	tr, err := NewTracker(50)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTracker(2); err == nil {
		t.Error("tiny maxKeep accepted")
	}
	if err := tr.Observe("", t0, 1); err == nil {
		t.Error("empty key")
	}
	if err := tr.Observe("k", time.Time{}, 1); err == nil {
		t.Error("zero time")
	}
	if err := tr.Observe("k", t0, math.NaN()); err == nil {
		t.Error("NaN value")
	}
	// A developing fault: severity rises 0.02/hour from 0.2.
	for i := 0; i < 20; i++ {
		if err := tr.Observe("m|bearing", t0.Add(time.Duration(i)*time.Hour), 0.2+0.02*float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	proj, err := tr.Project("m|bearing", 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if !proj.Reaches {
		t.Fatal("rising severity should reach threshold")
	}
	// (0.75-0.2)/0.02 = 27.5 hours from origin.
	want := t0.Add(27*time.Hour + 30*time.Minute)
	if math.Abs(proj.Crossing.Sub(want).Seconds()) > 60 {
		t.Errorf("crossing %v, want %v", proj.Crossing, want)
	}
	if _, err := tr.Project("ghost", 0.5); err == nil {
		t.Error("unknown key should error")
	}
	if ks := tr.Keys(); len(ks) != 1 || ks[0] != "m|bearing" {
		t.Errorf("keys %v", ks)
	}
	if h := tr.History("m|bearing"); len(h) != 20 {
		t.Errorf("history %d", len(h))
	}
}

func TestTrackerBoundsHistory(t *testing.T) {
	tr, err := NewTracker(5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := tr.Observe("k", t0.Add(time.Duration(i)*time.Minute), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	h := tr.History("k")
	if len(h) != 5 {
		t.Fatalf("kept %d", len(h))
	}
	if h[0].Value != 45 || h[4].Value != 49 {
		t.Errorf("wrong window: %v", h)
	}
}
