// Package trend implements the temporal-reasoning extension of §10.1:
// "temporal reasoning components could be implemented to scrutinize failure
// histories and provide better projections of future faults as they
// develop." It fits robust linear trends (Theil-Sen, with ordinary least
// squares available for comparison) to severity histories and projects the
// crossing time of a severity threshold — e.g. when a developing fault will
// reach the Extreme grade.
package trend

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Point is one observation of a tracked quantity.
type Point struct {
	At    time.Time
	Value float64
}

// Fit is a linear trend y = Intercept + Slope·t, with t in seconds from the
// first observation.
type Fit struct {
	// Slope is the value change per second.
	Slope float64
	// Intercept is the value at the first observation's time.
	Intercept float64
	// Origin anchors t=0.
	Origin time.Time
	// N is the number of points fitted.
	N int
	// Residual is the mean absolute residual, a fit-quality indicator.
	Residual float64
}

// ValueAt evaluates the fitted line at a time.
func (f Fit) ValueAt(at time.Time) float64 {
	return f.Intercept + f.Slope*at.Sub(f.Origin).Seconds()
}

// CrossingTime returns when the fitted line reaches the threshold. It
// returns ok=false for flat or receding trends or when the crossing is in
// the past relative to the fit origin... callers compare with their notion
// of "now".
func (f Fit) CrossingTime(threshold float64) (time.Time, bool) {
	if f.Slope <= 0 {
		return time.Time{}, false
	}
	dt := (threshold - f.Intercept) / f.Slope
	if dt < 0 {
		return time.Time{}, false
	}
	return f.Origin.Add(time.Duration(dt * float64(time.Second))), true
}

// TheilSen fits a robust line: slope = median of pairwise slopes, intercept
// = median of (y - slope·t). It tolerates a minority of outlier
// observations (sensor glitches, transient load artifacts) that would drag
// an OLS fit. Needs at least 3 points with distinct times.
func TheilSen(points []Point) (Fit, error) {
	if len(points) < 3 {
		return Fit{}, fmt.Errorf("trend: need at least 3 points, have %d", len(points))
	}
	pts := append([]Point(nil), points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].At.Before(pts[j].At) })
	origin := pts[0].At
	ts := make([]float64, len(pts))
	for i, p := range pts {
		ts[i] = p.At.Sub(origin).Seconds()
	}
	var slopes []float64
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			//lint:allow floateq guards the slope division; only exactly equal timestamps divide by zero
			if ts[j] == ts[i] {
				continue
			}
			slopes = append(slopes, (pts[j].Value-pts[i].Value)/(ts[j]-ts[i]))
		}
	}
	if len(slopes) == 0 {
		return Fit{}, fmt.Errorf("trend: all observations share one timestamp")
	}
	slope := median(slopes)
	inters := make([]float64, len(pts))
	for i, p := range pts {
		inters[i] = p.Value - slope*ts[i]
	}
	intercept := median(inters)
	fit := Fit{Slope: slope, Intercept: intercept, Origin: origin, N: len(pts)}
	var absSum float64
	for i, p := range pts {
		absSum += math.Abs(p.Value - (intercept + slope*ts[i]))
	}
	fit.Residual = absSum / float64(len(pts))
	return fit, nil
}

// OLS fits an ordinary least squares line, for comparison with TheilSen.
func OLS(points []Point) (Fit, error) {
	if len(points) < 3 {
		return Fit{}, fmt.Errorf("trend: need at least 3 points, have %d", len(points))
	}
	pts := append([]Point(nil), points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].At.Before(pts[j].At) })
	origin := pts[0].At
	var sumT, sumY, sumTT, sumTY float64
	for _, p := range pts {
		t := p.At.Sub(origin).Seconds()
		sumT += t
		sumY += p.Value
		sumTT += t * t
		sumTY += t * p.Value
	}
	n := float64(len(pts))
	den := n*sumTT - sumT*sumT
	if den == 0 {
		return Fit{}, fmt.Errorf("trend: all observations share one timestamp")
	}
	slope := (n*sumTY - sumT*sumY) / den
	intercept := (sumY - slope*sumT) / n
	fit := Fit{Slope: slope, Intercept: intercept, Origin: origin, N: len(pts)}
	var absSum float64
	for _, p := range pts {
		t := p.At.Sub(origin).Seconds()
		absSum += math.Abs(p.Value - (intercept + slope*t))
	}
	fit.Residual = absSum / n
	return fit, nil
}

func median(xs []float64) float64 {
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

// Tracker accumulates bounded per-key histories and projects threshold
// crossings. Safe for concurrent use.
type Tracker struct {
	mu      sync.Mutex
	maxKeep int
	series  map[string][]Point
}

// NewTracker keeps at most maxKeep points per key (older points roll off).
func NewTracker(maxKeep int) (*Tracker, error) {
	if maxKeep < 3 {
		return nil, fmt.Errorf("trend: maxKeep %d too small to fit", maxKeep)
	}
	return &Tracker{maxKeep: maxKeep, series: make(map[string][]Point)}, nil
}

// Observe appends an observation for a key.
func (tr *Tracker) Observe(key string, at time.Time, value float64) error {
	if key == "" {
		return fmt.Errorf("trend: empty key")
	}
	if at.IsZero() || math.IsNaN(value) || math.IsInf(value, 0) {
		return fmt.Errorf("trend: invalid observation")
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	s := append(tr.series[key], Point{At: at, Value: value})
	if len(s) > tr.maxKeep {
		s = s[len(s)-tr.maxKeep:]
	}
	tr.series[key] = s
	return nil
}

// History returns a copy of a key's observations.
func (tr *Tracker) History(key string) []Point {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]Point(nil), tr.series[key]...)
}

// Projection is a threshold-crossing forecast.
type Projection struct {
	Fit Fit
	// Crossing is when the trend reaches the threshold.
	Crossing time.Time
	// Reaches is false for flat/receding trends.
	Reaches bool
}

// Project fits the key's history (Theil-Sen) and projects when it reaches
// threshold.
func (tr *Tracker) Project(key string, threshold float64) (Projection, error) {
	return ProjectPoints(tr.History(key), threshold)
}

// ProjectPoints fits a Theil-Sen trend to an arbitrary point series
// (dense, sparse, or downsampled — e.g. historian rollup means) and
// projects the threshold crossing.
func ProjectPoints(points []Point, threshold float64) (Projection, error) {
	fit, err := TheilSen(points)
	if err != nil {
		return Projection{}, err
	}
	p := Projection{Fit: fit}
	p.Crossing, p.Reaches = fit.CrossingTime(threshold)
	return p, nil
}

// Keys returns the tracked keys in sorted order.
func (tr *Tracker) Keys() []string {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]string, 0, len(tr.series))
	for k := range tr.series {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
