package health

import (
	"sort"
	"time"

	"repro/internal/proto"
)

// Checkpoint snapshots for the PDME's durable journal. The registry's
// Config is deliberately NOT part of the snapshot: thresholds come from
// flags at boot (ConfigureHealth), while the snapshot carries only the
// observation history — watermark, per-DC last-seen state, and the version
// counter the serving tier keys its cache on.

// DCObservationState is one DC's recorded observation history.
type DCObservationState struct {
	DCID          string              `json:"dcid"`
	LastHeartbeat time.Time           `json:"last_heartbeat,omitempty"`
	LastReport    time.Time           `json:"last_report,omitempty"`
	Boot          uint64              `json:"boot,omitempty"`
	Incarnation   uint64              `json:"incarnation,omitempty"`
	Restarts      []time.Time         `json:"restarts,omitempty"`
	SpoolDepth    int                 `json:"spool_depth,omitempty"`
	Suites        []proto.SuiteStatus `json:"suites,omitempty"`
	Sources       []SourceObservation `json:"sources,omitempty"`
}

// SourceObservation is a knowledge source's last report timestamp.
type SourceObservation struct {
	Source string    `json:"source"`
	At     time.Time `json:"at"`
}

// RegistryState is a serializable snapshot of a Registry's observation
// history, sorted for a deterministic encoding.
type RegistryState struct {
	Watermark time.Time            `json:"watermark,omitempty"`
	Version   uint64               `json:"version"`
	DCs       []DCObservationState `json:"dcs,omitempty"`
}

// ExportState snapshots the observation history for checkpointing.
func (g *Registry) ExportState() RegistryState {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := RegistryState{Watermark: g.watermark, Version: g.version}
	for dcid, r := range g.dcs {
		ds := DCObservationState{
			DCID:          dcid,
			LastHeartbeat: r.lastHeartbeat,
			LastReport:    r.lastReport,
			Boot:          r.boot,
			Incarnation:   r.incarnation,
			Restarts:      append([]time.Time(nil), r.restarts...),
			SpoolDepth:    r.spoolDepth,
			Suites:        append([]proto.SuiteStatus(nil), r.suites...),
		}
		for src, at := range r.sources {
			ds.Sources = append(ds.Sources, SourceObservation{Source: src, At: at})
		}
		sort.Slice(ds.Sources, func(i, k int) bool { return ds.Sources[i].Source < ds.Sources[k].Source })
		st.DCs = append(st.DCs, ds)
	}
	sort.Slice(st.DCs, func(i, k int) bool { return st.DCs[i].DCID < st.DCs[k].DCID })
	return st
}

// RestoreState replaces the observation history with a snapshot; the
// configured thresholds (Config) are untouched.
func (g *Registry) RestoreState(st RegistryState) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.watermark = st.Watermark
	g.version = st.Version
	g.dcs = make(map[string]*dcRecord, len(st.DCs))
	for _, ds := range st.DCs {
		r := &dcRecord{
			lastHeartbeat: ds.LastHeartbeat,
			lastReport:    ds.LastReport,
			boot:          ds.Boot,
			incarnation:   ds.Incarnation,
			restarts:      append([]time.Time(nil), ds.Restarts...),
			spoolDepth:    ds.SpoolDepth,
			suites:        append([]proto.SuiteStatus(nil), ds.Suites...),
			sources:       make(map[string]time.Time, len(ds.Sources)),
		}
		for _, s := range ds.Sources {
			r.sources[s.Source] = s.At
		}
		g.dcs[ds.DCID] = r
	}
}
