// Package health is the PDME-side fleet-health registry: it watches the
// stream of DC heartbeats and reports (and, just as importantly, its
// silences) and maintains a per-DC liveness state machine plus per-source
// reliability factors.
//
// The paper's DLI reports carry believability factors (§5.5) and Knowledge
// Fusion is explicitly conservative (§5.3); this package applies the same
// idea to the monitoring fleet itself. A DC that goes quiet, restarts in a
// loop, or lags its schedule should not keep contributing full-strength
// evidence: its reports' reliability decays with age and state, and the
// fusion layer (fusion.DiagnosticFuser with a Discounter) shifts the
// forfeited confidence to Θ — beliefs degrade toward Unknown instead of
// freezing at their last fused values, and recover automatically when the
// source returns.
//
// The registry never reads the wall clock itself: a Clock can be injected
// (pdmed passes time.Now), and without one the registry runs on event time
// — the high-watermark of every heartbeat and report timestamp it has
// observed — so virtual-time simulations and chaos tests are fully
// deterministic (enforced by the noclock analyzer).
package health

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/proto"
)

// State is a DC's liveness classification.
type State int

const (
	// StateUnknown means the registry has never heard from the DC.
	StateUnknown State = iota
	// StateAlive means the DC signalled within the late deadline.
	StateAlive
	// StateLate means the DC missed its deadline but is not yet presumed
	// down — reliability decays but evidence still counts.
	StateLate
	// StateSilent means nothing has been heard for the silent deadline; the
	// DC is presumed down and its evidence is additionally penalized.
	StateSilent
	// StateFlapping means the DC is restarting faster than the configured
	// rate: it is "alive" but untrustworthy (crash loops lose in-flight
	// analysis state), so its evidence is penalized until restarts age out.
	StateFlapping
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateLate:
		return "late"
	case StateSilent:
		return "silent"
	case StateFlapping:
		return "flapping"
	default:
		return "unknown"
	}
}

// MarshalJSON renders the state by name — snapshots feed operator-facing
// JSON endpoints, where a bare enum int is unreadable.
func (s State) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// Defaults for Config's zero values.
const (
	DefaultLateAfter        = 5 * time.Minute
	DefaultSilentAfter      = 15 * time.Minute
	DefaultFlapWindow       = 30 * time.Minute
	DefaultFlapRestarts     = 3
	DefaultFreshFor         = 1 * time.Hour
	DefaultStalenessHorizon = 24 * time.Hour
	DefaultSilentPenalty    = 0.5
	DefaultFlapPenalty      = 0.5
)

// Config parametrizes the registry's state machine and reliability curve.
type Config struct {
	// LateAfter is the silence duration after which a DC is Late
	// (0: DefaultLateAfter). Pick a small multiple of the heartbeat period.
	LateAfter time.Duration
	// SilentAfter is the silence duration after which a DC is Silent
	// (0: DefaultSilentAfter). Must exceed LateAfter.
	SilentAfter time.Duration
	// FlapWindow is the sliding window over which restarts are counted
	// (0: DefaultFlapWindow).
	FlapWindow time.Duration
	// FlapRestarts is the restart count within FlapWindow that classifies a
	// DC as Flapping (0: DefaultFlapRestarts).
	FlapRestarts int
	// FreshFor is the report age up to which evidence keeps full
	// reliability (0: DefaultFreshFor). Pick at least the slowest suite's
	// reporting period, or healthy sources will be discounted between runs.
	FreshFor time.Duration
	// StalenessHorizon is the report age at which reliability bottoms out
	// at ReliabilityFloor (0: DefaultStalenessHorizon). Between FreshFor
	// and the horizon reliability falls linearly.
	StalenessHorizon time.Duration
	// ReliabilityFloor is the minimum reliability factor, in [0,1). At the
	// default 0 a fully stale source's evidence is discounted away entirely
	// and its fused conditions decay to total ignorance.
	ReliabilityFloor float64
	// SilentPenalty multiplies the age-derived reliability of a Silent DC's
	// evidence (0: DefaultSilentPenalty; 1 disables the penalty).
	SilentPenalty float64
	// FlapPenalty multiplies the age-derived reliability of a Flapping DC's
	// evidence (0: DefaultFlapPenalty; 1 disables the penalty).
	FlapPenalty float64
	// Clock supplies "now" for staleness evaluation. Nil runs the registry
	// on event time: now is the latest heartbeat/report timestamp observed,
	// which makes virtual-time simulations deterministic.
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.LateAfter <= 0 {
		c.LateAfter = DefaultLateAfter
	}
	if c.SilentAfter <= 0 {
		c.SilentAfter = DefaultSilentAfter
	}
	if c.FlapWindow <= 0 {
		c.FlapWindow = DefaultFlapWindow
	}
	if c.FlapRestarts <= 0 {
		c.FlapRestarts = DefaultFlapRestarts
	}
	if c.FreshFor <= 0 {
		c.FreshFor = DefaultFreshFor
	}
	if c.StalenessHorizon <= 0 {
		c.StalenessHorizon = DefaultStalenessHorizon
	}
	if c.SilentPenalty <= 0 {
		c.SilentPenalty = DefaultSilentPenalty
	}
	if c.FlapPenalty <= 0 {
		c.FlapPenalty = DefaultFlapPenalty
	}
	return c
}

// Validate checks the configuration's internal consistency (after default
// substitution).
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.SilentAfter <= c.LateAfter {
		return fmt.Errorf("health: SilentAfter %v must exceed LateAfter %v", c.SilentAfter, c.LateAfter)
	}
	if c.StalenessHorizon <= c.FreshFor {
		return fmt.Errorf("health: StalenessHorizon %v must exceed FreshFor %v", c.StalenessHorizon, c.FreshFor)
	}
	if c.ReliabilityFloor < 0 || c.ReliabilityFloor >= 1 {
		return fmt.Errorf("health: ReliabilityFloor %g outside [0,1)", c.ReliabilityFloor)
	}
	if c.SilentPenalty > 1 || c.FlapPenalty > 1 {
		return fmt.Errorf("health: penalties must be at most 1")
	}
	return nil
}

// dcRecord is the registry's per-DC state.
type dcRecord struct {
	lastHeartbeat time.Time
	lastReport    time.Time
	boot          uint64
	incarnation   uint64
	// restarts holds the observation times of incarnation changes, oldest
	// first, pruned to FlapWindow on read.
	restarts   []time.Time
	spoolDepth int
	suites     []proto.SuiteStatus
	// sources maps knowledge-source id to its last report timestamp.
	sources map[string]time.Time
}

// lastSeen is the DC's most recent sign of life on either channel.
func (r *dcRecord) lastSeen() time.Time {
	if r.lastReport.After(r.lastHeartbeat) {
		return r.lastReport
	}
	return r.lastHeartbeat
}

// Registry tracks fleet health. Safe for concurrent use; implements
// fusion's Discounter contract via Reliability.
type Registry struct {
	//lint:allow snapshotparity thresholds and clocks are boot-time config from flags, not observation state
	cfg Config

	mu        sync.Mutex
	watermark time.Time // event-time high-watermark (Clock==nil mode)
	dcs       map[string]*dcRecord
	// version counts observations (heartbeats + reports). In event-time mode
	// every Reliability/StateOf output is a pure function of the observation
	// history, so an unchanged version means unchanged outputs — the
	// read-side view cache keys its health-discounted entries on it.
	version uint64
}

// NewRegistry builds a registry; zero Config fields take package defaults.
func NewRegistry(cfg Config) (*Registry, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Registry{cfg: cfg.withDefaults(), dcs: make(map[string]*dcRecord)}, nil
}

// Config returns the registry's effective (default-substituted) config.
func (g *Registry) Config() Config { return g.cfg }

// now returns the staleness-evaluation clock: the injected Clock, or the
// event-time watermark. Callers must hold g.mu.
func (g *Registry) now() time.Time {
	if g.cfg.Clock != nil {
		return g.cfg.Clock()
	}
	return g.watermark
}

// Now exposes the registry's current notion of time (wall clock or event
// watermark), for displays.
func (g *Registry) Now() time.Time {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.now()
}

// Version returns the registry's observation counter: it changes if and only
// if a heartbeat or report observation has been folded in. In event-time mode
// (Clock nil) an unchanged version guarantees every Reliability and StateOf
// answer is unchanged too, which lets caches reuse health-discounted values
// without re-asking. With an injected wall clock the guarantee is weaker —
// outputs also drift with the clock between observations.
func (g *Registry) Version() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.version
}

// WallClocked reports whether the registry judges staleness by an injected
// wall clock rather than the event-time watermark. Wall-clocked registries'
// outputs change between observations, so caches must bound the age of
// health-discounted entries instead of relying on Version alone.
func (g *Registry) WallClocked() bool { return g.cfg.Clock != nil }

func (g *Registry) advance(at time.Time) {
	if at.After(g.watermark) {
		g.watermark = at
	}
}

func (g *Registry) record(dcid string) *dcRecord {
	r, ok := g.dcs[dcid]
	if !ok {
		r = &dcRecord{sources: make(map[string]time.Time)}
		g.dcs[dcid] = r
	}
	return r
}

// ObserveHeartbeat folds one heartbeat into the registry; it implements
// proto.HeartbeatSink.
func (g *Registry) ObserveHeartbeat(hb *proto.Heartbeat) error {
	if err := hb.Validate(); err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.version++
	g.advance(hb.SentAt)
	r := g.record(hb.DCID)
	if hb.SentAt.After(r.lastHeartbeat) {
		r.lastHeartbeat = hb.SentAt
		r.spoolDepth = hb.SpoolDepth
		r.suites = hb.Suites
	}
	// A changed boot or incarnation id is a sender restart. The very first
	// heartbeat establishes the baseline without counting.
	if hb.Incarnation != 0 && hb.Incarnation != r.incarnation {
		if r.incarnation != 0 {
			r.restarts = append(r.restarts, g.now())
		}
		r.incarnation = hb.Incarnation
	}
	if hb.Boot != 0 && hb.Boot != r.boot {
		if r.boot != 0 && hb.Incarnation == 0 {
			// Boot-only senders (no incarnation id): count the boot change
			// itself so volatile-spool restarts are still visible.
			r.restarts = append(r.restarts, g.now())
		}
		r.boot = hb.Boot
	}
	r.pruneRestarts(g.now(), g.cfg.FlapWindow)
	return nil
}

// ObserveReport notes a delivered report from a DC's knowledge source.
// Reports are liveness evidence too: a DC whose heartbeats are lost but
// whose reports arrive is late at worst, never silent.
func (g *Registry) ObserveReport(dcid, source string, at time.Time) {
	if dcid == "" || at.IsZero() {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.version++
	g.advance(at)
	r := g.record(dcid)
	if at.After(r.lastReport) {
		r.lastReport = at
	}
	if source != "" {
		if prev, ok := r.sources[source]; !ok || at.After(prev) {
			r.sources[source] = at
		}
	}
}

func (r *dcRecord) pruneRestarts(now time.Time, window time.Duration) {
	cut := now.Add(-window)
	for len(r.restarts) > 0 && !r.restarts[0].After(cut) {
		r.restarts = r.restarts[1:]
	}
}

// stateLocked classifies one DC at time now. Callers hold g.mu.
func (g *Registry) stateLocked(r *dcRecord, now time.Time) State {
	if r == nil || r.lastSeen().IsZero() {
		return StateUnknown
	}
	r.pruneRestarts(now, g.cfg.FlapWindow)
	if len(r.restarts) >= g.cfg.FlapRestarts {
		return StateFlapping
	}
	age := now.Sub(r.lastSeen())
	switch {
	case age <= g.cfg.LateAfter:
		return StateAlive
	case age <= g.cfg.SilentAfter:
		return StateLate
	default:
		return StateSilent
	}
}

// StateOf returns a DC's current liveness state.
func (g *Registry) StateOf(dcid string) State {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stateLocked(g.dcs[dcid], g.now())
}

// Reliability returns the Shafer discount factor for evidence from the
// given DC whose latest report carries the given timestamp: 1 while fresh,
// falling linearly to the floor at the staleness horizon, with a further
// multiplicative penalty while the DC is silent or flapping. It implements
// the fusion package's Discounter contract. An unknown DC (heartbeats not
// configured) is discounted by age alone.
func (g *Registry) Reliability(dcid string, lastReport time.Time) float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	now := g.now()
	alpha := g.ageFactor(now.Sub(lastReport))
	switch g.stateLocked(g.dcs[dcid], now) {
	case StateSilent:
		alpha *= g.cfg.SilentPenalty
	case StateFlapping:
		alpha *= g.cfg.FlapPenalty
	}
	if alpha < g.cfg.ReliabilityFloor {
		alpha = g.cfg.ReliabilityFloor
	}
	return alpha
}

// ageFactor maps a report age onto [floor, 1].
func (g *Registry) ageFactor(age time.Duration) float64 {
	if age <= g.cfg.FreshFor {
		return 1
	}
	if age >= g.cfg.StalenessHorizon {
		return g.cfg.ReliabilityFloor
	}
	span := g.cfg.StalenessHorizon - g.cfg.FreshFor
	frac := float64(age-g.cfg.FreshFor) / float64(span)
	return 1 - (1-g.cfg.ReliabilityFloor)*frac
}

// SourceAge is one knowledge source's last-report record.
type SourceAge struct {
	Source     string
	LastReport time.Time
}

// DCHealth is one DC's health snapshot.
type DCHealth struct {
	DCID  string
	State State
	// LastHeartbeat, LastReport, and LastSeen are the most recent
	// observation times (zero: never).
	LastHeartbeat time.Time
	LastReport    time.Time
	LastSeen      time.Time
	// SpoolDepth is the undelivered-report backlog announced by the last
	// heartbeat.
	SpoolDepth int
	// RecentRestarts counts sender restarts within the flap window.
	RecentRestarts int
	// Reliability is the discount factor evidence stamped LastReport would
	// receive right now.
	Reliability float64
	// Suites is the last heartbeat's per-suite last-run info.
	Suites []proto.SuiteStatus
	// Sources lists per-knowledge-source last-report times, sorted by
	// source id.
	Sources []SourceAge
}

// Snapshot returns every known DC's health, sorted by DC id.
func (g *Registry) Snapshot() []DCHealth {
	g.mu.Lock()
	ids := make([]string, 0, len(g.dcs))
	for id := range g.dcs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	now := g.now()
	out := make([]DCHealth, 0, len(ids))
	for _, id := range ids {
		r := g.dcs[id]
		h := DCHealth{
			DCID:           id,
			State:          g.stateLocked(r, now),
			LastHeartbeat:  r.lastHeartbeat,
			LastReport:     r.lastReport,
			LastSeen:       r.lastSeen(),
			SpoolDepth:     r.spoolDepth,
			RecentRestarts: len(r.restarts),
			Suites:         append([]proto.SuiteStatus(nil), r.suites...),
		}
		for src, at := range r.sources {
			h.Sources = append(h.Sources, SourceAge{Source: src, LastReport: at})
		}
		sort.Slice(h.Sources, func(i, j int) bool { return h.Sources[i].Source < h.Sources[j].Source })
		out = append(out, h)
	}
	g.mu.Unlock()
	// Reliability re-locks per DC; compute after releasing the registry.
	for i := range out {
		out[i].Reliability = g.Reliability(out[i].DCID, out[i].LastReport)
	}
	return out
}
