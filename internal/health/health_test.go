package health

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/proto"
)

// t0 is an arbitrary fixed epoch; all test times derive from it so the
// package stays wall-clock free (noclock).
var t0 = time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)

func testConfig() Config {
	return Config{
		LateAfter:        5 * time.Minute,
		SilentAfter:      15 * time.Minute,
		FlapWindow:       30 * time.Minute,
		FlapRestarts:     3,
		FreshFor:         time.Hour,
		StalenessHorizon: 5 * time.Hour,
		ReliabilityFloor: 0.1,
		SilentPenalty:    0.5,
		FlapPenalty:      0.5,
	}
}

func mustRegistry(t *testing.T, cfg Config) *Registry {
	t.Helper()
	g, err := NewRegistry(cfg)
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	return g
}

func hb(dc string, at time.Time, incarnation uint64) *proto.Heartbeat {
	return &proto.Heartbeat{DCID: dc, SentAt: at, Incarnation: incarnation}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config should validate via defaults: %v", err)
	}
	bad := []Config{
		{LateAfter: time.Hour, SilentAfter: time.Minute},
		{FreshFor: time.Hour, StalenessHorizon: time.Minute},
		{ReliabilityFloor: 1},
		{ReliabilityFloor: -0.5},
		{SilentPenalty: 2},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
}

func TestStateMachine(t *testing.T) {
	g := mustRegistry(t, testConfig())
	if got := g.StateOf("dc-0"); got != StateUnknown {
		t.Fatalf("never-seen DC state = %v, want unknown", got)
	}
	if err := g.ObserveHeartbeat(hb("dc-0", t0, 1)); err != nil {
		t.Fatal(err)
	}
	if got := g.StateOf("dc-0"); got != StateAlive {
		t.Fatalf("fresh DC state = %v, want alive", got)
	}
	// Another DC's heartbeat advances the event-time watermark; dc-0 ages.
	if err := g.ObserveHeartbeat(hb("dc-1", t0.Add(10*time.Minute), 1)); err != nil {
		t.Fatal(err)
	}
	if got := g.StateOf("dc-0"); got != StateLate {
		t.Fatalf("10min-quiet DC state = %v, want late", got)
	}
	if err := g.ObserveHeartbeat(hb("dc-1", t0.Add(20*time.Minute), 1)); err != nil {
		t.Fatal(err)
	}
	if got := g.StateOf("dc-0"); got != StateSilent {
		t.Fatalf("20min-quiet DC state = %v, want silent", got)
	}
	// A report (not just a heartbeat) revives it.
	g.ObserveReport("dc-0", "vibration", t0.Add(21*time.Minute))
	if got := g.StateOf("dc-0"); got != StateAlive {
		t.Fatalf("after report, state = %v, want alive", got)
	}
}

func TestFlapDetection(t *testing.T) {
	g := mustRegistry(t, testConfig())
	// Baseline incarnation, then three restarts within the window.
	for i, at := range []time.Duration{0, 2 * time.Minute, 4 * time.Minute, 6 * time.Minute} {
		if err := g.ObserveHeartbeat(hb("dc-0", t0.Add(at), uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if got := g.StateOf("dc-0"); got != StateFlapping {
		t.Fatalf("after 3 restarts in window, state = %v, want flapping", got)
	}
	snap := g.Snapshot()
	if len(snap) != 1 || snap[0].RecentRestarts != 3 {
		t.Fatalf("snapshot restarts = %+v, want 3", snap)
	}
	// Flap records expire once the window slides past them.
	if err := g.ObserveHeartbeat(hb("dc-0", t0.Add(40*time.Minute), 4)); err != nil {
		t.Fatal(err)
	}
	if got := g.StateOf("dc-0"); got != StateAlive {
		t.Fatalf("after window slid past restarts, state = %v, want alive", got)
	}
	// Repeating the same incarnation never counts as a restart.
	g2 := mustRegistry(t, testConfig())
	for i := 0; i < 10; i++ {
		if err := g2.ObserveHeartbeat(hb("dc-0", t0.Add(time.Duration(i)*time.Minute), 7)); err != nil {
			t.Fatal(err)
		}
	}
	if got := g2.StateOf("dc-0"); got != StateAlive {
		t.Fatalf("stable incarnation state = %v, want alive", got)
	}
}

func TestReliabilityCurve(t *testing.T) {
	cfg := testConfig()
	g := mustRegistry(t, cfg)
	if err := g.ObserveHeartbeat(hb("dc-0", t0, 1)); err != nil {
		t.Fatal(err)
	}
	// Fresh evidence from an alive DC: full reliability.
	if got := g.Reliability("dc-0", t0); got != 1 {
		t.Fatalf("fresh reliability = %g, want 1", got)
	}
	// Midpoint of the decay ramp: FreshFor=1h, horizon=5h, floor=0.1 →
	// at age 3h the factor is 1 - 0.9*(2h/4h) = 0.55. Keep the DC alive via
	// heartbeats so only age discounts.
	if err := g.ObserveHeartbeat(hb("dc-0", t0.Add(3*time.Hour), 1)); err != nil {
		t.Fatal(err)
	}
	if got := g.Reliability("dc-0", t0); math.Abs(got-0.55) > 1e-12 {
		t.Fatalf("mid-ramp reliability = %g, want 0.55", got)
	}
	// Past the horizon: floor.
	if err := g.ObserveHeartbeat(hb("dc-0", t0.Add(6*time.Hour), 1)); err != nil {
		t.Fatal(err)
	}
	if got := g.Reliability("dc-0", t0); math.Abs(got-cfg.ReliabilityFloor) > 1e-12 {
		t.Fatalf("stale reliability = %g, want floor %g", got, cfg.ReliabilityFloor)
	}
}

func TestReliabilityMonotoneInAge(t *testing.T) {
	g := mustRegistry(t, testConfig())
	if err := g.ObserveHeartbeat(hb("dc-keepalive", t0, 1)); err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for age := time.Duration(0); age <= 7*time.Hour; age += 13 * time.Minute {
		// Advance the watermark with a keepalive heartbeat, then evaluate a
		// report stamped t0.
		if err := g.ObserveHeartbeat(hb("dc-keepalive", t0.Add(age), 1)); err != nil {
			t.Fatal(err)
		}
		got := g.Reliability("dc-keepalive", t0)
		if got > prev {
			t.Fatalf("reliability increased with age at %v: %g > %g", age, got, prev)
		}
		prev = got
	}
}

func TestStatePenalties(t *testing.T) {
	cfg := testConfig()
	g := mustRegistry(t, cfg)
	if err := g.ObserveHeartbeat(hb("dc-0", t0, 1)); err != nil {
		t.Fatal(err)
	}
	// Silence dc-0 by advancing the watermark via dc-1. Age of the report
	// stays inside FreshFor so only the state penalty applies.
	if err := g.ObserveHeartbeat(hb("dc-1", t0.Add(20*time.Minute), 1)); err != nil {
		t.Fatal(err)
	}
	if got := g.StateOf("dc-0"); got != StateSilent {
		t.Fatalf("state = %v, want silent", got)
	}
	if got := g.Reliability("dc-0", t0.Add(19*time.Minute)); math.Abs(got-cfg.SilentPenalty) > 1e-12 {
		t.Fatalf("silent fresh reliability = %g, want penalty %g", got, cfg.SilentPenalty)
	}
	// A DC the registry has never heard from (heartbeats disabled) is
	// discounted by age alone.
	if got := g.Reliability("dc-never", t0.Add(19*time.Minute)); got != 1 {
		t.Fatalf("unknown-DC fresh reliability = %g, want 1", got)
	}
}

func TestSnapshot(t *testing.T) {
	g := mustRegistry(t, testConfig())
	err := g.ObserveHeartbeat(&proto.Heartbeat{
		DCID: "dc-b", SentAt: t0, Boot: 42, Incarnation: 9, SpoolDepth: 7,
		Suites: []proto.SuiteStatus{{Name: "vibration-test", LastRun: t0.Add(-time.Minute), Runs: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	g.ObserveReport("dc-a", "fuzzy", t0.Add(time.Minute))
	g.ObserveReport("dc-a", "vibration", t0.Add(6*time.Minute))
	snap := g.Snapshot()
	if len(snap) != 2 || snap[0].DCID != "dc-a" || snap[1].DCID != "dc-b" {
		t.Fatalf("snapshot order: %+v", snap)
	}
	a, b := snap[0], snap[1]
	if len(a.Sources) != 2 || a.Sources[0].Source != "fuzzy" || a.Sources[1].Source != "vibration" {
		t.Fatalf("dc-a sources: %+v", a.Sources)
	}
	if !a.LastSeen.Equal(t0.Add(6 * time.Minute)) {
		t.Fatalf("dc-a last seen %v", a.LastSeen)
	}
	if b.SpoolDepth != 7 || len(b.Suites) != 1 || b.Suites[0].Runs != 3 {
		t.Fatalf("dc-b heartbeat fields: %+v", b)
	}
	if a.State != StateAlive || b.State != StateLate {
		t.Fatalf("states a=%v b=%v", a.State, b.State)
	}
	// Snapshots feed JSON endpoints; states marshal by name.
	buf, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf), `"State":"alive"`) || !strings.Contains(string(buf), `"State":"late"`) {
		t.Fatalf("states not marshalled by name: %s", buf)
	}
}

func TestInjectedClock(t *testing.T) {
	now := t0
	cfg := testConfig()
	cfg.Clock = func() time.Time { return now }
	g := mustRegistry(t, cfg)
	if err := g.ObserveHeartbeat(hb("dc-0", t0, 1)); err != nil {
		t.Fatal(err)
	}
	if got := g.StateOf("dc-0"); got != StateAlive {
		t.Fatalf("state = %v, want alive", got)
	}
	// Advancing the injected clock alone (no traffic) ages the DC —
	// unlike watermark mode, which needs events to move time.
	now = t0.Add(time.Hour)
	if got := g.StateOf("dc-0"); got != StateSilent {
		t.Fatalf("state after clock jump = %v, want silent", got)
	}
	if !g.Now().Equal(now) {
		t.Fatalf("Now() = %v, want %v", g.Now(), now)
	}
}

func TestObserveHeartbeatRejectsInvalid(t *testing.T) {
	g := mustRegistry(t, testConfig())
	if err := g.ObserveHeartbeat(&proto.Heartbeat{SentAt: t0}); err == nil {
		t.Fatal("heartbeat without DC id should be rejected")
	}
	if err := g.ObserveHeartbeat(&proto.Heartbeat{DCID: "dc-0"}); err == nil {
		t.Fatal("heartbeat without send time should be rejected")
	}
	// Out-of-order heartbeats never move lastSeen backwards.
	if err := g.ObserveHeartbeat(hb("dc-0", t0.Add(time.Hour), 1)); err != nil {
		t.Fatal(err)
	}
	if err := g.ObserveHeartbeat(hb("dc-0", t0, 1)); err != nil {
		t.Fatal(err)
	}
	if got := g.Snapshot()[0].LastSeen; !got.Equal(t0.Add(time.Hour)) {
		t.Fatalf("stale heartbeat moved lastSeen to %v", got)
	}
}
