package health

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"repro/internal/proto"
)

// TestRegistryStateRoundtrip: ExportState → JSON → RestoreState reproduces
// the observation history exactly — per-DC last-seen state, restart
// history, watermark, and the version counter the serving tier keys its
// cache on — while leaving the configured thresholds untouched.
func TestRegistryStateRoundtrip(t *testing.T) {
	g := mustRegistry(t, testConfig())
	if err := g.ObserveHeartbeat(hb("dc-1", t0, 1)); err != nil {
		t.Fatal(err)
	}
	g.ObserveReport("dc-1", "vibration", t0.Add(time.Minute))
	g.ObserveReport("dc-1", "oil", t0.Add(2*time.Minute))
	// dc-2 restarts twice (incarnation bumps) and carries suite status.
	for i, inc := range []uint64{1, 2, 3} {
		h := hb("dc-2", t0.Add(time.Duration(i)*time.Minute), inc)
		h.SpoolDepth = 4
		h.Suites = []proto.SuiteStatus{{Name: "vibration", LastRun: t0, Runs: int64(i + 1)}}
		if err := g.ObserveHeartbeat(h); err != nil {
			t.Fatal(err)
		}
	}

	st := g.ExportState()
	blob, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var decoded RegistryState
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	restored := mustRegistry(t, testConfig())
	restored.RestoreState(decoded)

	if got, want := restored.Version(), g.Version(); got != want {
		t.Errorf("restored version %d, want %d", got, want)
	}
	if got, want := restored.Now(), g.Now(); !got.Equal(want) {
		t.Errorf("restored watermark %v, want %v", got, want)
	}
	want, got := g.Snapshot(), restored.Snapshot()
	if !reflect.DeepEqual(want, got) {
		t.Errorf("restored snapshot differs:\n got %+v\nwant %+v", got, want)
	}
	// Re-export is identical: checkpoint bytes are deterministic.
	if again := restored.ExportState(); !reflect.DeepEqual(st, again) {
		t.Errorf("re-exported state differs:\n got %+v\nwant %+v", again, st)
	}
	// History continues from the restored state: another incarnation bump
	// pushes dc-2 over the flap threshold just as it would have live.
	if err := restored.ObserveHeartbeat(hb("dc-2", t0.Add(3*time.Minute), 4)); err != nil {
		t.Fatal(err)
	}
	if got := restored.StateOf("dc-2"); got != StateFlapping {
		t.Errorf("dc-2 after restored restart history + one more = %v, want %v", got, StateFlapping)
	}
}

// TestRestoreStateReplacesHistory: restoring drops observation history the
// snapshot does not carry — recovery must not merge pre-open state into
// the checkpoint's.
func TestRestoreStateReplacesHistory(t *testing.T) {
	g := mustRegistry(t, testConfig())
	if err := g.ObserveHeartbeat(hb("dc-old", t0, 1)); err != nil {
		t.Fatal(err)
	}
	g.RestoreState(RegistryState{Watermark: t0.Add(time.Hour), Version: 9})
	if len(g.Snapshot()) != 0 {
		t.Error("pre-restore DC survived RestoreState")
	}
	if g.Version() != 9 {
		t.Errorf("version = %d, want 9", g.Version())
	}
	if !g.Now().Equal(t0.Add(time.Hour)) {
		t.Errorf("watermark = %v, want %v", g.Now(), t0.Add(time.Hour))
	}
}
