package proto

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"sync"
	"time"
)

// The wire format is a 4-byte big-endian length prefix followed by a JSON
// body. Each frame carries one envelope. The PDME replies to every report
// frame with an ack frame, giving DCs at-least-once delivery with
// application-level confirmation (the ship's network is assumed unreliable;
// §4.9 calls out communications instability as a deployment concern).

// MaxFrameSize bounds a frame body to keep a corrupted length prefix from
// allocating unbounded memory.
const MaxFrameSize = 16 << 20

type envelope struct {
	Kind   string  `json:"kind"` // "report" | "heartbeat" | "summary" | "ack" | "error"
	Report *Report `json:"report,omitempty"`
	// Heartbeat carries the fleet-health liveness frame (kind "heartbeat").
	Heartbeat *Heartbeat `json:"heartbeat,omitempty"`
	// Summary carries the shard→aggregator fused-state frame (kind
	// "summary"); DCID then names the sending shard.
	Summary *FusedSummary `json:"summary,omitempty"`
	Error   string        `json:"error,omitempty"`
	// DCID and Seq tag a report frame with a per-DC monotonic delivery id so
	// the receiving side can deduplicate at-least-once redelivery (a resend
	// after a lost ack). Seq 0 means untagged (legacy senders). Boot
	// identifies the sender incarnation that assigned Seq: a sender whose
	// sequence state did not survive a restart (volatile spool) starts a new
	// boot, and the receiver resets that DC's window instead of mistaking the
	// restarted sequence numbers for duplicates.
	DCID string `json:"dc,omitempty"`
	Boot uint64 `json:"boot,omitempty"`
	Seq  uint64 `json:"seq,omitempty"`
	// Dup marks an ack for a report the server had already fused; the sender
	// can retire it from its spool without the sink seeing it twice.
	Dup bool `json:"dup,omitempty"`
}

// writeFrame writes one length-prefixed JSON frame.
func writeFrame(w io.Writer, env envelope) error {
	body, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("proto: marshal frame: %w", err)
	}
	if len(body) > MaxFrameSize {
		return fmt.Errorf("proto: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// writeRawFrame writes an already-encoded JSON body as one length-prefixed
// frame. It is the zero-marshal counterpart of writeFrame used by the report
// send path, which assembles the body with AppendReportEnvelope into a
// reused buffer.
func writeRawFrame(w io.Writer, body []byte) error {
	if len(body) > MaxFrameSize {
		return fmt.Errorf("proto: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readFrame reads one length-prefixed JSON frame.
func readFrame(r io.Reader) (envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return envelope{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return envelope{}, fmt.Errorf("proto: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return envelope{}, err
	}
	var env envelope
	if err := json.Unmarshal(body, &env); err != nil {
		return envelope{}, fmt.Errorf("proto: unmarshal frame: %w", err)
	}
	return env, nil
}

// Sink consumes validated reports; the PDME implements this interface.
type Sink interface {
	Deliver(*Report) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(*Report) error

// Deliver calls the function.
func (f SinkFunc) Deliver(r *Report) error { return f(r) }

// TaggedSink is a Sink that also wants the envelope's delivery tag. A
// durable PDME implements it so the (DC id, boot, sequence) triple can be
// journaled with the report and the dedup window re-marked during replay —
// without the tag, a crash between fusing a report and acking it would
// leave the resent copy indistinguishable from new evidence.
type TaggedSink interface {
	Sink
	// DeliverTagged consumes a validated report with its delivery tag;
	// boot and seq are zero for untagged frames.
	DeliverTagged(r *Report, dcid string, boot, seq uint64) error
}

// DefaultIdleTimeout is the server's per-connection read/write deadline: a
// peer that neither completes a frame nor drains a reply within this window
// is presumed dead and its handler goroutine released (shipboard networks
// drop links without FINs; without deadlines a dead peer pins a goroutine
// and its half-written frame forever).
const DefaultIdleTimeout = 2 * time.Minute

// Server accepts report connections and forwards validated reports to a
// sink. Create with NewServer, then Serve (blocking) or start via Start.
type Server struct {
	sink Sink
	// hbSink, when set, receives validated heartbeat frames; without it
	// heartbeats are acked and discarded (liveness still confirmed).
	hbSink HeartbeatSink
	// sumSink, when set, receives validated fused-summary frames; without
	// it summaries are rejected (a shard must not believe its upward flow
	// is landing when the receiver cannot store it).
	sumSink SummarySink
	// dedup, when set, suppresses redelivered report frames (same DC id and
	// sequence) with a duplicate ack instead of a second sink delivery.
	dedup *Dedup
	// idleTimeout bounds each read/write on a connection (0 disables).
	idleTimeout time.Duration
	// senderMu serializes the dedup-check → sink-deliver → dedup-mark span
	// per sender id (striped by hash). A sender normally pipelines frames
	// over one connection, but a client whose send timeout fires while the
	// sink is still fusing the frame redials and resends the same tag on a
	// fresh connection; the two handler goroutines would otherwise both pass
	// the Seen check before either Marks, fusing one report twice.
	senderMu [64]sync.Mutex

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer returns a server delivering reports to sink.
func NewServer(sink Sink) *Server {
	return &Server{sink: sink, conns: make(map[net.Conn]struct{}),
		idleTimeout: DefaultIdleTimeout}
}

// SetIdleTimeout overrides the per-connection read/write deadline; 0
// disables deadlines. Call before Start.
func (s *Server) SetIdleTimeout(d time.Duration) { s.idleTimeout = d }

// SetHeartbeatSink routes heartbeat frames to a fleet-health consumer.
// Call before Start.
func (s *Server) SetHeartbeatSink(hs HeartbeatSink) { s.hbSink = hs }

// SetDedup installs a duplicate-suppression window shared across all
// connections (and, if reused across Start cycles, across server restarts).
// Call before Start.
func (s *Server) SetDedup(d *Dedup) { s.dedup = d }

// Start begins listening on addr ("host:port", empty port for ephemeral) and
// serving in a background goroutine. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("proto: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close() // best-effort: the listener was never exposed
		return "", errors.New("proto: server already closed")
	}
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop(ln)
	}()
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close() // best-effort: shutting down anyway
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		_ = conn.Close() // best-effort: frame-level errors already ended the session
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		if s.idleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.idleTimeout))
		}
		env, err := readFrame(br)
		if err != nil {
			return // connection closed, idle, or corrupted framing
		}
		reply := s.process(env)
		if s.idleTimeout > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(s.idleTimeout))
		}
		if err := writeFrame(bw, reply); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// process turns one inbound envelope into its reply, applying validation,
// dedup, and sink delivery.
func (s *Server) process(env envelope) envelope {
	if env.Kind == "heartbeat" {
		if env.Heartbeat == nil {
			return envelope{Kind: "error", Error: "heartbeat frame without heartbeat"}
		}
		if err := env.Heartbeat.Validate(); err != nil {
			return envelope{Kind: "error", Error: err.Error()}
		}
		if s.hbSink != nil {
			if err := s.hbSink.ObserveHeartbeat(env.Heartbeat); err != nil {
				return envelope{Kind: "error", Error: err.Error()}
			}
		}
		return envelope{Kind: "ack"}
	}
	if env.Kind == "summary" {
		return s.processSummary(env)
	}
	if env.Kind != "report" || env.Report == nil {
		return envelope{Kind: "error", Error: "expected report frame"}
	}
	if err := env.Report.Validate(); err != nil {
		return envelope{Kind: "error", Error: err.Error()}
	}
	dcid := env.DCID
	if dcid == "" {
		dcid = env.Report.DCID
	}
	tagged := s.dedup != nil && env.Seq > 0
	if tagged {
		// Hold the sender's stripe across check+deliver+mark so a resend of
		// the same tag racing on another connection observes the mark.
		mu := s.senderLock(dcid)
		mu.Lock()
		defer mu.Unlock()
		if s.dedup.Seen(dcid, env.Boot, env.Seq) {
			return envelope{Kind: "ack", Dup: true}
		}
	}
	var derr error
	if ts, ok := s.sink.(TaggedSink); ok {
		// Hand the delivery tag to sinks that journal it (the dedup mark a
		// TaggedSink makes itself is idempotent with the one below).
		var boot, seq uint64
		if tagged {
			boot, seq = env.Boot, env.Seq
		}
		derr = ts.DeliverTagged(env.Report, dcid, boot, seq)
	} else {
		derr = s.sink.Deliver(env.Report)
	}
	if derr != nil {
		return envelope{Kind: "error", Error: derr.Error()}
	}
	// Record the sequence only after the sink accepted the report, so a
	// failed delivery can be retried without the window swallowing it.
	if tagged {
		s.dedup.Mark(dcid, env.Boot, env.Seq)
	}
	return envelope{Kind: "ack"}
}

// processSummary handles one shard→aggregator summary frame through the
// same dedup window as reports: summaries and reports from one sender share
// the sender's sequence space (they ride the same spool), so a single
// per-sender window suppresses redelivery of either kind.
func (s *Server) processSummary(env envelope) envelope {
	if env.Summary == nil {
		return envelope{Kind: "error", Error: "summary frame without summary"}
	}
	if err := env.Summary.Validate(); err != nil {
		return envelope{Kind: "error", Error: err.Error()}
	}
	if s.sumSink == nil {
		return envelope{Kind: "error", Error: "server has no summary sink (not an aggregator)"}
	}
	shardID := env.DCID
	if shardID == "" {
		shardID = env.Summary.ShardID
	}
	tagged := s.dedup != nil && env.Seq > 0
	if tagged {
		// Same stripe discipline as reports: a shard redialing mid-accept
		// must not double-deliver the summary it is resending.
		mu := s.senderLock(shardID)
		mu.Lock()
		defer mu.Unlock()
		if s.dedup.Seen(shardID, env.Boot, env.Seq) {
			return envelope{Kind: "ack", Dup: true}
		}
	}
	var boot, seq uint64
	if tagged {
		boot, seq = env.Boot, env.Seq
	}
	if err := s.sumSink.DeliverSummary(env.Summary, shardID, boot, seq); err != nil {
		return envelope{Kind: "error", Error: err.Error()}
	}
	// As with reports: mark only after the sink accepted, so a failed
	// delivery stays retryable.
	if tagged {
		s.dedup.Mark(shardID, env.Boot, env.Seq)
	}
	return envelope{Kind: "ack"}
}

// senderLock returns the stripe mutex covering one sender id.
func (s *Server) senderLock(id string) *sync.Mutex {
	h := fnv.New32a()
	_, _ = h.Write([]byte(id))
	return &s.senderMu[h.Sum32()%uint32(len(s.senderMu))]
}

// Close stops the listener and all active connections, waiting for handler
// goroutines to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		_ = c.Close() // best-effort: forcing handlers to unblock
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// ErrRejected wraps application-level refusals: the server read the frame
// and answered with an error envelope (validation failure, unknown
// condition, sink error). Transport errors never wrap it, so callers can
// tell "the link is down — redial" from "the report is unacceptable".
var ErrRejected = errors.New("proto: server rejected report")

// Client is a connection to a report server; safe for concurrent use
// (requests are serialized on the single connection).
type Client struct {
	addr    string
	timeout time.Duration

	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	// buf is the report-frame encode scratch, reused across sends under mu
	// so steady-state report delivery does not allocate a body per frame.
	buf []byte
}

// Dial connects to a report server at addr.
func Dial(addr string) (*Client, error) {
	return DialContext(context.Background(), addr)
}

// DialContext connects to a report server at addr, honouring the context
// deadline for connection establishment.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	c := &Client{addr: addr}
	if err := c.Redial(ctx); err != nil {
		return nil, err
	}
	return c, nil
}

// SetTimeout bounds each subsequent send (write + ack read) with a
// connection deadline; 0 (the default) disables per-send deadlines.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.timeout = d
}

// Redial replaces the client's connection with a fresh dial to the original
// address, honouring the context deadline. The old connection (if any) is
// closed. On dial failure the previous connection is left in place.
func (c *Client) Redial(ctx context.Context) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return fmt.Errorf("proto: dial %s: %w", c.addr, err)
	}
	c.mu.Lock()
	old := c.conn
	c.conn = conn
	c.br = bufio.NewReader(conn)
	c.bw = bufio.NewWriter(conn)
	c.mu.Unlock()
	if old != nil {
		_ = old.Close()
	}
	return nil
}

// exchange writes one envelope and reads the reply under the client lock,
// applying the per-send deadline when configured.
func (c *Client) exchange(env envelope) (envelope, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return envelope{}, errors.New("proto: client closed")
	}
	if c.timeout > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(c.timeout))
	}
	if err := writeFrame(c.bw, env); err != nil {
		return envelope{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return envelope{}, err
	}
	return readFrame(c.br)
}

// exchangeReport writes one report frame — encoded into the client's reused
// buffer by AppendReportEnvelope rather than marshaled — and reads the reply
// under the client lock, applying the per-send deadline when configured.
func (c *Client) exchangeReport(r *Report, dcid string, boot, seq uint64) (envelope, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return envelope{}, errors.New("proto: client closed")
	}
	body, err := AppendReportEnvelope(c.buf[:0], r, dcid, boot, seq)
	if err != nil {
		return envelope{}, err
	}
	c.buf = body[:0]
	if c.timeout > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(c.timeout))
	}
	if err := writeRawFrame(c.bw, body); err != nil {
		return envelope{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return envelope{}, err
	}
	return readFrame(c.br)
}

// send performs one tagged or untagged report exchange.
func (c *Client) send(r *Report, dcid string, boot, seq uint64) (dup bool, err error) {
	reply, err := c.exchangeReport(r, dcid, boot, seq)
	if err != nil {
		return false, err
	}
	switch reply.Kind {
	case "ack":
		return reply.Dup, nil
	case "error":
		return false, fmt.Errorf("%w: %s", ErrRejected, reply.Error)
	default:
		return false, fmt.Errorf("proto: unexpected reply kind %q", reply.Kind)
	}
}

// Send validates and delivers one report, waiting for the server's ack. A
// server-side delivery failure is returned as an error wrapping ErrRejected.
func (c *Client) Send(r *Report) error {
	if err := r.Validate(); err != nil {
		return err
	}
	_, err := c.send(r, "", 0, 0)
	return err
}

// SendTagged delivers a report stamped with the DC's boot incarnation and
// monotonic sequence number, enabling server-side dedup of at-least-once
// redelivery. It returns whether the server acked it as an already-seen
// duplicate.
func (c *Client) SendTagged(r *Report, boot, seq uint64) (dup bool, err error) {
	if err := r.Validate(); err != nil {
		return false, err
	}
	return c.send(r, r.DCID, boot, seq)
}

// Deliver implements Sink, so a Client can stand in wherever an in-process
// sink is expected (e.g. as a DC uplink).
func (c *Client) Deliver(r *Report) error { return c.Send(r) }

// SendWithRetry sends a report, retrying transient failures with backoff.
// Validation failures are not retried. A transport failure leaves the old
// connection dead, so the client redials before each retry; application
// rejections retry on the same connection (the link is fine — the sink may
// recover). Prefer the uplink package for spooled, deduplicated delivery.
func (c *Client) SendWithRetry(r *Report, attempts int, backoff time.Duration) error {
	if err := r.Validate(); err != nil {
		return err
	}
	var last error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(backoff)
			backoff *= 2
			if !errors.Is(last, ErrRejected) {
				if err := c.Redial(context.Background()); err != nil {
					last = err
					continue
				}
			}
		}
		if last = c.Send(r); last == nil {
			return nil
		}
	}
	return last
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// Bus is an in-process transport implementing the same Sink contract for
// single-machine deployments (the paper's phase-1 lab setup ran the PDME and
// DC on one network but the architecture allows colocated operation).
type Bus struct {
	mu    sync.RWMutex
	sinks []Sink
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// Attach registers a sink to receive every published report.
func (b *Bus) Attach(s Sink) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sinks = append(b.sinks, s)
}

// Deliver validates the report and forwards it to every attached sink. One
// failing sink no longer starves the rest: every sink sees the report, and
// the joined errors of all failures are returned.
func (b *Bus) Deliver(r *Report) error {
	if err := r.Validate(); err != nil {
		return err
	}
	b.mu.RLock()
	sinks := make([]Sink, len(b.sinks))
	copy(sinks, b.sinks)
	b.mu.RUnlock()
	var errs []error
	for _, s := range sinks {
		if err := s.Deliver(r); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
