package proto

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// The wire format is a 4-byte big-endian length prefix followed by a JSON
// body. Each frame carries one envelope. The PDME replies to every report
// frame with an ack frame, giving DCs at-least-once delivery with
// application-level confirmation (the ship's network is assumed unreliable;
// §4.9 calls out communications instability as a deployment concern).

// MaxFrameSize bounds a frame body to keep a corrupted length prefix from
// allocating unbounded memory.
const MaxFrameSize = 16 << 20

type envelope struct {
	Kind   string  `json:"kind"` // "report" | "ack" | "error"
	Report *Report `json:"report,omitempty"`
	Error  string  `json:"error,omitempty"`
}

// writeFrame writes one length-prefixed JSON frame.
func writeFrame(w io.Writer, env envelope) error {
	body, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("proto: marshal frame: %w", err)
	}
	if len(body) > MaxFrameSize {
		return fmt.Errorf("proto: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// readFrame reads one length-prefixed JSON frame.
func readFrame(r io.Reader) (envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return envelope{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return envelope{}, fmt.Errorf("proto: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return envelope{}, err
	}
	var env envelope
	if err := json.Unmarshal(body, &env); err != nil {
		return envelope{}, fmt.Errorf("proto: unmarshal frame: %w", err)
	}
	return env, nil
}

// Sink consumes validated reports; the PDME implements this interface.
type Sink interface {
	Deliver(*Report) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(*Report) error

// Deliver calls the function.
func (f SinkFunc) Deliver(r *Report) error { return f(r) }

// Server accepts report connections and forwards validated reports to a
// sink. Create with NewServer, then Serve (blocking) or start via Start.
type Server struct {
	sink Sink

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer returns a server delivering reports to sink.
func NewServer(sink Sink) *Server {
	return &Server{sink: sink, conns: make(map[net.Conn]struct{})}
}

// Start begins listening on addr ("host:port", empty port for ephemeral) and
// serving in a background goroutine. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("proto: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", errors.New("proto: server already closed")
	}
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop(ln)
	}()
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		env, err := readFrame(br)
		if err != nil {
			return // connection closed or corrupted framing
		}
		var reply envelope
		switch {
		case env.Kind != "report" || env.Report == nil:
			reply = envelope{Kind: "error", Error: "expected report frame"}
		case env.Report.Validate() != nil:
			reply = envelope{Kind: "error", Error: env.Report.Validate().Error()}
		default:
			if err := s.sink.Deliver(env.Report); err != nil {
				reply = envelope{Kind: "error", Error: err.Error()}
			} else {
				reply = envelope{Kind: "ack"}
			}
		}
		if err := writeFrame(bw, reply); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// Close stops the listener and all active connections, waiting for handler
// goroutines to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Client is a connection to a report server; safe for concurrent use
// (requests are serialized on the single connection).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// Dial connects to a report server at addr.
func Dial(addr string) (*Client, error) {
	return DialContext(context.Background(), addr)
}

// DialContext connects to a report server at addr, honouring the context
// deadline for connection establishment.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("proto: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}, nil
}

// Send validates and delivers one report, waiting for the server's ack. A
// server-side delivery failure is returned as an error.
func (c *Client) Send(r *Report) error {
	if err := r.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.bw, envelope{Kind: "report", Report: r}); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	reply, err := readFrame(c.br)
	if err != nil {
		return err
	}
	if reply.Kind == "error" {
		return fmt.Errorf("proto: server rejected report: %s", reply.Error)
	}
	if reply.Kind != "ack" {
		return fmt.Errorf("proto: unexpected reply kind %q", reply.Kind)
	}
	return nil
}

// Deliver implements Sink, so a Client can stand in wherever an in-process
// sink is expected (e.g. as a DC uplink).
func (c *Client) Deliver(r *Report) error { return c.Send(r) }

// SendWithRetry sends a report, retrying transient failures with backoff.
// Validation failures are not retried.
func (c *Client) SendWithRetry(r *Report, attempts int, backoff time.Duration) error {
	if err := r.Validate(); err != nil {
		return err
	}
	var last error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		if last = c.Send(r); last == nil {
			return nil
		}
	}
	return last
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// Bus is an in-process transport implementing the same Sink contract for
// single-machine deployments (the paper's phase-1 lab setup ran the PDME and
// DC on one network but the architecture allows colocated operation).
type Bus struct {
	mu    sync.RWMutex
	sinks []Sink
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// Attach registers a sink to receive every published report.
func (b *Bus) Attach(s Sink) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sinks = append(b.sinks, s)
}

// Deliver validates the report and forwards it to every attached sink,
// returning the first error.
func (b *Bus) Deliver(r *Report) error {
	if err := r.Validate(); err != nil {
		return err
	}
	b.mu.RLock()
	sinks := make([]Sink, len(b.sinks))
	copy(sinks, b.sinks)
	b.mu.RUnlock()
	for _, s := range sinks {
		if err := s.Deliver(r); err != nil {
			return err
		}
	}
	return nil
}
