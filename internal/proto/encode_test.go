package proto

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
	"time"
)

func encodeTestReports() []*Report {
	ts := time.Date(2026, 8, 8, 12, 34, 56, 789012345, time.UTC)
	return []*Report{
		{
			DCID:               "dc-chiller-1",
			KnowledgeSourceID:  "vibration",
			SensedObjectID:     "motor",
			MachineConditionID: "imbalance",
			Severity:           0.62,
			Belief:             0.91,
			Explanation:        "1x shaft order dominates",
			Recommendations:    "balance rotor at next window",
			Timestamp:          ts,
			AdditionalInfo:     `quote " backslash \ newline` + "\n\ttab",
			SuspectChannels:    []string{"motor_de_accel", "motor_nde_accel"},
			Prognostics: []PrognosticPoint{
				{Probability: 0.25, HorizonSeconds: 3600},
				{Probability: 0.75, HorizonSeconds: 86400.5},
			},
		},
		{
			DCID:               "dc-2",
			KnowledgeSourceID:  "sbfr",
			SensedObjectID:     "valve",
			MachineConditionID: "stiction",
			Severity:           1,
			Belief:             0.5,
			Timestamp:          ts.In(time.FixedZone("UTC+2", 2*3600)),
		},
		{
			DCID:               "dc-3",
			KnowledgeSourceID:  "wnn",
			SensedObjectID:     "gearbox",
			MachineConditionID: "mesh-wear",
			Severity:           1e-7,
			Belief:             0.123456789012345,
			Explanation:        "control \x01 char and bad utf8 \xff here, plus <html> & unicode é❤",
			Timestamp:          ts.Truncate(time.Second),
		},
	}
}

// TestAppendReportEnvelopeDecodeEqual checks the hand-rolled encoder against
// encoding/json by decoded value: both bodies must unmarshal to identical
// envelopes (timestamps compared by instant).
func TestAppendReportEnvelopeDecodeEqual(t *testing.T) {
	type tag struct {
		dcid      string
		boot, seq uint64
	}
	tags := []tag{{}, {dcid: "dc-chiller-1", boot: 3, seq: 41}}
	for ri, r := range encodeTestReports() {
		for _, tg := range tags {
			got, err := AppendReportEnvelope(nil, r, tg.dcid, tg.boot, tg.seq)
			if err != nil {
				t.Fatalf("report %d: AppendReportEnvelope: %v", ri, err)
			}
			want, err := json.Marshal(envelope{Kind: "report", Report: r, DCID: tg.dcid, Boot: tg.boot, Seq: tg.seq})
			if err != nil {
				t.Fatalf("report %d: json.Marshal: %v", ri, err)
			}
			var gotEnv, wantEnv envelope
			if err := json.Unmarshal(got, &gotEnv); err != nil {
				t.Fatalf("report %d: hand-rolled body is not valid JSON: %v\n%s", ri, err, got)
			}
			if err := json.Unmarshal(want, &wantEnv); err != nil {
				t.Fatalf("report %d: reference body unmarshal: %v", ri, err)
			}
			if !gotEnv.Report.Timestamp.Equal(wantEnv.Report.Timestamp) {
				t.Errorf("report %d: timestamp %v != %v", ri, gotEnv.Report.Timestamp, wantEnv.Report.Timestamp)
			}
			gotEnv.Report.Timestamp = wantEnv.Report.Timestamp
			if !reflect.DeepEqual(gotEnv, wantEnv) {
				t.Errorf("report %d tag %+v: decoded envelopes differ\nhand-rolled: %s\nreference:   %s", ri, tg, got, want)
			}
		}
	}
}

// TestAppendReportEnvelopeRejects checks the cold-path guards that
// encoding/json would also refuse.
func TestAppendReportEnvelopeRejects(t *testing.T) {
	if _, err := AppendReportEnvelope(nil, nil, "", 0, 0); err == nil {
		t.Error("nil report accepted")
	}
	bad := encodeTestReports()[0]
	bad.Severity = math.NaN()
	if _, err := AppendReportEnvelope(nil, bad, "", 0, 0); err == nil {
		t.Error("NaN severity accepted")
	}
	bad = encodeTestReports()[0]
	bad.Timestamp = time.Date(12000, 1, 1, 0, 0, 0, 0, time.UTC)
	if _, err := AppendReportEnvelope(nil, bad, "", 0, 0); err == nil {
		t.Error("out-of-range year accepted")
	}
}

func BenchmarkMarshalReportEnvelope(b *testing.B) {
	r := encodeTestReports()[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := json.Marshal(envelope{Kind: "report", Report: r, DCID: "dc-chiller-1", Boot: 3, Seq: 41}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendReportEnvelope(b *testing.B) {
	r := encodeTestReports()[0]
	buf := make([]byte, 0, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendReportEnvelope(buf[:0], r, "dc-chiller-1", 3, 41)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// TestAppendReportEnvelopeZeroAlloc is the hot-path allocation budget: with a
// preallocated buffer, encoding a full report frame must not touch the heap.
func TestAppendReportEnvelopeZeroAlloc(t *testing.T) {
	r := encodeTestReports()[0]
	buf := make([]byte, 0, 4096)
	allocs := testing.AllocsPerRun(200, func() {
		var err error
		buf, err = AppendReportEnvelope(buf[:0], r, "dc-chiller-1", 3, 41)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("AppendReportEnvelope allocates %.1f times per frame, want 0", allocs)
	}
}
