// Package proto defines the MPROS failure prediction reporting protocol of
// §7: the standard report format every knowledge source uses to deliver
// diagnostic and prognostic conclusions to the PDME, plus transports.
//
// The original system carried these reports over Microsoft DCOM; this
// reproduction substitutes a length-prefixed JSON framing over TCP (and an
// in-process bus for single-machine deployments). The report schema itself
// follows §7.2 field-for-field, with the §7.3 prognostic vector of
// (probability, time) pairs.
package proto

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Severity bands used by the DLI expert system (§6.1): the numeric severity
// score is "interpreted through empirical methods which map it into four
// gradient categories" corresponding to expected time to failure.
type SeverityGrade int

const (
	// SeverityNone means no fault indication.
	SeverityNone SeverityGrade = iota
	// SeveritySlight corresponds to "no foreseeable failure".
	SeveritySlight
	// SeverityModerate corresponds to "failure in months".
	SeverityModerate
	// SeveritySerious corresponds to "failure in weeks".
	SeveritySerious
	// SeverityExtreme corresponds to "failure in days".
	SeverityExtreme
)

// String names the grade.
func (g SeverityGrade) String() string {
	switch g {
	case SeverityNone:
		return "None"
	case SeveritySlight:
		return "Slight"
	case SeverityModerate:
		return "Moderate"
	case SeveritySerious:
		return "Serious"
	case SeverityExtreme:
		return "Extreme"
	default:
		return "Unknown"
	}
}

// GradeSeverity maps a numeric severity in [0,1] to its gradient category
// using the empirical thresholds of the reproduction's rulebook.
func GradeSeverity(severity float64) SeverityGrade {
	switch {
	case severity <= 0:
		return SeverityNone
	case severity < 0.25:
		return SeveritySlight
	case severity < 0.5:
		return SeverityModerate
	case severity < 0.75:
		return SeveritySerious
	default:
		return SeverityExtreme
	}
}

// ExpectedFailureHorizon returns the loose time-to-failure description of
// §6.1 for a grade: no foreseeable failure (0), months, weeks, or days.
func (g SeverityGrade) ExpectedFailureHorizon() time.Duration {
	const day = 24 * time.Hour
	switch g {
	case SeverityModerate:
		return 90 * day // failure in months
	case SeveritySerious:
		return 21 * day // failure in weeks
	case SeverityExtreme:
		return 3 * day // failure in days
	default:
		return 0 // none/slight: no foreseeable failure
	}
}

// PrognosticPoint is one "(probability, time)" pair of §7.3: "the
// probability that the given machine condition will lead to failure of the
// machine within 'time' seconds from now".
type PrognosticPoint struct {
	// Probability of failure within the horizon, in [0,1].
	Probability float64 `json:"probability"`
	// Horizon is the time from report issuance, in seconds (§7.3 uses
	// seconds on the wire; helpers accept time.Duration).
	HorizonSeconds float64 `json:"time"`
}

// Horizon returns the point's horizon as a duration.
func (p PrognosticPoint) Horizon() time.Duration {
	return time.Duration(p.HorizonSeconds * float64(time.Second))
}

// PrognosticVector is zero to n ordered prognostic points.
type PrognosticVector []PrognosticPoint

// Validate checks ordering (strictly increasing horizons), monotone
// non-decreasing probability, and ranges.
func (v PrognosticVector) Validate() error {
	for i, p := range v {
		if p.Probability < 0 || p.Probability > 1 || math.IsNaN(p.Probability) {
			return fmt.Errorf("proto: prognostic point %d probability %g outside [0,1]", i, p.Probability)
		}
		if p.HorizonSeconds <= 0 || math.IsNaN(p.HorizonSeconds) || math.IsInf(p.HorizonSeconds, 0) {
			return fmt.Errorf("proto: prognostic point %d horizon %g not positive finite", i, p.HorizonSeconds)
		}
		if i > 0 {
			if p.HorizonSeconds <= v[i-1].HorizonSeconds {
				return fmt.Errorf("proto: prognostic horizons not strictly increasing at %d", i)
			}
			if p.Probability < v[i-1].Probability {
				return fmt.Errorf("proto: prognostic probabilities decrease at %d", i)
			}
		}
	}
	return nil
}

// Sorted returns a copy of v sorted by horizon.
func (v PrognosticVector) Sorted() PrognosticVector {
	out := append(PrognosticVector(nil), v...)
	sort.Slice(out, func(i, j int) bool { return out[i].HorizonSeconds < out[j].HorizonSeconds })
	return out
}

// ProbabilityAt linearly interpolates the failure probability at horizon t.
// Before the first point it interpolates from (0,0); past the last point it
// extrapolates along the last segment's slope, clamped to [last.P, 1]. This
// is the "interpolating a smooth curve from point to point" primitive of
// §5.4 used by prognostic knowledge fusion.
func (v PrognosticVector) ProbabilityAt(t time.Duration) float64 {
	if len(v) == 0 {
		return 0
	}
	ts := t.Seconds()
	if ts <= 0 {
		return 0
	}
	prevT, prevP := 0.0, 0.0
	for _, p := range v {
		if ts <= p.HorizonSeconds {
			span := p.HorizonSeconds - prevT
			if span <= 0 {
				return p.Probability
			}
			frac := (ts - prevT) / span
			return prevP + frac*(p.Probability-prevP)
		}
		prevT, prevP = p.HorizonSeconds, p.Probability
	}
	// Extrapolate beyond the final point along the last segment slope.
	last := v[len(v)-1]
	var slope float64
	if len(v) >= 2 {
		pen := v[len(v)-2]
		if last.HorizonSeconds > pen.HorizonSeconds {
			slope = (last.Probability - pen.Probability) / (last.HorizonSeconds - pen.HorizonSeconds)
		}
	} else if last.HorizonSeconds > 0 {
		slope = last.Probability / last.HorizonSeconds
	}
	p := last.Probability + slope*(ts-last.HorizonSeconds)
	if p > 1 {
		p = 1
	}
	if p < last.Probability {
		p = last.Probability
	}
	return p
}

// TimeToProbability returns the earliest horizon at which the interpolated
// curve reaches probability target, or (0, false) if it never does within
// maxHorizon.
func (v PrognosticVector) TimeToProbability(target float64, maxHorizon time.Duration) (time.Duration, bool) {
	if len(v) == 0 || target <= 0 {
		return 0, false
	}
	step := maxHorizon / 1000
	if step <= 0 {
		return 0, false
	}
	for t := step; t <= maxHorizon; t += step {
		if v.ProbabilityAt(t) >= target {
			return t, true
		}
	}
	return 0, false
}

// Report is the §7.2 failure prediction report. Optional text fields may be
// empty; a report may carry a diagnostic part, a prognostic vector, or both.
type Report struct {
	// DCID identifies the data concentrator that originated the report
	// ("DC ID", §5.5).
	DCID string `json:"dc_id"`
	// KnowledgeSourceID is "the unique MPROS object ID for the instance of
	// the knowledge source" (§7.2 item 1).
	KnowledgeSourceID string `json:"knowledge_source_id"`
	// SensedObjectID is the object the report applies to (§7.2 item 2).
	SensedObjectID string `json:"sensed_object_id"`
	// MachineConditionID names the diagnosed machine condition, e.g.
	// "motor imbalance", "pump bearing housing looseness" (§7.2 item 3).
	MachineConditionID string `json:"machine_condition_id"`
	// Severity in [0,1]; maximal severity is 1.0 (§7.2 item 4).
	Severity float64 `json:"severity"`
	// Belief in [0,1] that this diagnosis is true (§7.2 item 5).
	Belief float64 `json:"belief"`
	// Explanation is an optional human-readable diagnosis description.
	Explanation string `json:"explanation,omitempty"`
	// Recommendations is an optional human-readable action description.
	Recommendations string `json:"recommendations,omitempty"`
	// Timestamp is when the report should be considered effective.
	Timestamp time.Time `json:"timestamp"`
	// AdditionalInfo is optional extra human-readable information.
	AdditionalInfo string `json:"additional_info,omitempty"`
	// SuspectChannels lists raw sensor channels the DC's channel guards
	// flagged (stuck-at, dropout, spike) while producing the evidence behind
	// this report. A non-empty list means Belief was capped at the guard's
	// believability ceiling and downstream consumers should treat the
	// conclusion as provisional until the channel clears.
	SuspectChannels []string `json:"suspect_channels,omitempty"`
	// Prognostics is the §7.3 vector; may be empty for pure diagnostics.
	Prognostics PrognosticVector `json:"prognostics,omitempty"`
}

// Validate checks field ranges and the prognostic vector.
func (r *Report) Validate() error {
	if r.KnowledgeSourceID == "" {
		return fmt.Errorf("proto: report missing knowledge source id")
	}
	if r.SensedObjectID == "" {
		return fmt.Errorf("proto: report missing sensed object id")
	}
	if r.MachineConditionID == "" {
		return fmt.Errorf("proto: report missing machine condition id")
	}
	if r.Severity < 0 || r.Severity > 1 || math.IsNaN(r.Severity) {
		return fmt.Errorf("proto: severity %g outside [0,1]", r.Severity)
	}
	if r.Belief < 0 || r.Belief > 1 || math.IsNaN(r.Belief) {
		return fmt.Errorf("proto: belief %g outside [0,1]", r.Belief)
	}
	if r.Timestamp.IsZero() {
		return fmt.Errorf("proto: report missing timestamp")
	}
	return r.Prognostics.Validate()
}

// Grade returns the severity gradient category of the report.
func (r *Report) Grade() SeverityGrade { return GradeSeverity(r.Severity) }
