package proto

import "sort"

// DedupState is a serializable snapshot of a Dedup window, part of the
// PDME's durable checkpoint: recovering it is what lets a restarted PDME
// keep suppressing spool replays of reports it fused before the crash.
type DedupState struct {
	Hits int64          `json:"hits,omitempty"`
	DCs  []DedupDCState `json:"dcs,omitempty"`
}

// DedupDCState is one DC's window: the boot incarnation it is scoped to,
// the highest marked sequence, and the marked sequences still inside the
// window (sorted ascending for a deterministic encoding).
type DedupDCState struct {
	DCID   string   `json:"dcid"`
	Boot   uint64   `json:"boot"`
	MaxSeq uint64   `json:"max_seq"`
	Seen   []uint64 `json:"seen,omitempty"`
}

// State snapshots the window for checkpointing. DCs and sequences are
// sorted so identical windows encode identically.
func (d *Dedup) State() DedupState {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := DedupState{Hits: d.hits}
	for dcid, w := range d.dcs {
		seen := make([]uint64, 0, len(w.seen))
		for s := range w.seen {
			seen = append(seen, s)
		}
		sort.Slice(seen, func(i, k int) bool { return seen[i] < seen[k] })
		st.DCs = append(st.DCs, DedupDCState{DCID: dcid, Boot: w.boot, MaxSeq: w.maxSeq, Seen: seen})
	}
	sort.Slice(st.DCs, func(i, k int) bool { return st.DCs[i].DCID < st.DCs[k].DCID })
	return st
}

// Restore replaces the window contents with a snapshot. The window
// capacity stays as configured at construction; sequences below the
// restored floor are pruned against it on the next Mark.
func (d *Dedup) Restore(st DedupState) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.hits = st.Hits
	d.dcs = make(map[string]*dedupWindow, len(st.DCs))
	for _, dc := range st.DCs {
		w := &dedupWindow{boot: dc.Boot, maxSeq: dc.MaxSeq, seen: make(map[uint64]struct{}, len(dc.Seen))}
		for _, s := range dc.Seen {
			w.seen[s] = struct{}{}
		}
		d.dcs[dc.DCID] = w
	}
}
