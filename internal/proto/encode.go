package proto

import (
	"fmt"
	"math"
	"strconv"
	"time"
	"unicode/utf8"
)

// Allocation-free report frame encoding.
//
// json.Marshal walks the envelope through reflection and allocates a fresh
// body per frame; on the uplink drain path that is one GC-visible allocation
// per report at the exact moment the DC is busiest. AppendReportEnvelope
// hand-builds the identical JSON into a caller-provided buffer instead —
// identical by decoded value, not byte-for-byte: field set, omitempty
// behaviour, RFC 3339 timestamps, and shortest round-trip float formatting
// all match, which is what readFrame on the other side consumes.
//
// The encoder is deliberately limited to report frames (the only
// steady-state frame kind); heartbeats and acks keep the reflective path.

// hexDigits is the lowercase alphabet used for \u00xx escapes, as
// encoding/json emits them.
const hexDigits = "0123456789abcdef"

// AppendReportEnvelope appends the JSON body of one report frame — the wire
// equivalent of marshaling envelope{Kind: "report", Report: r, DCID: dcid,
// Boot: boot, Seq: seq} — and returns the extended buffer. Tag fields follow
// omitempty: zero values are omitted, so untagged frames pass "" and zeros.
// The report must be valid (NaN or infinite numbers are rejected, as
// encoding/json would).
//
//mpros:hotpath report frame encode on the uplink drain
func AppendReportEnvelope(dst []byte, r *Report, dcid string, boot, seq uint64) ([]byte, error) {
	if r == nil {
		return dst, fmt.Errorf("proto: nil report")
	}
	dst = append(dst, `{"kind":"report","report":`...)
	dst, err := appendReport(dst, r)
	if err != nil {
		return dst, err
	}
	if dcid != "" {
		dst = append(dst, `,"dc":`...)
		dst = appendJSONString(dst, dcid)
	}
	if boot != 0 {
		dst = append(dst, `,"boot":`...)
		dst = strconv.AppendUint(dst, boot, 10)
	}
	if seq != 0 {
		dst = append(dst, `,"seq":`...)
		dst = strconv.AppendUint(dst, seq, 10)
	}
	dst = append(dst, '}')
	return dst, nil
}

// appendReport appends the Report object in its json-tag field order.
func appendReport(dst []byte, r *Report) ([]byte, error) {
	dst = append(dst, `{"dc_id":`...)
	dst = appendJSONString(dst, r.DCID)
	dst = append(dst, `,"knowledge_source_id":`...)
	dst = appendJSONString(dst, r.KnowledgeSourceID)
	dst = append(dst, `,"sensed_object_id":`...)
	dst = appendJSONString(dst, r.SensedObjectID)
	dst = append(dst, `,"machine_condition_id":`...)
	dst = appendJSONString(dst, r.MachineConditionID)
	dst = append(dst, `,"severity":`...)
	dst, err := appendJSONFloat(dst, r.Severity)
	if err != nil {
		return dst, err
	}
	dst = append(dst, `,"belief":`...)
	dst, err = appendJSONFloat(dst, r.Belief)
	if err != nil {
		return dst, err
	}
	if r.Explanation != "" {
		dst = append(dst, `,"explanation":`...)
		dst = appendJSONString(dst, r.Explanation)
	}
	if r.Recommendations != "" {
		dst = append(dst, `,"recommendations":`...)
		dst = appendJSONString(dst, r.Recommendations)
	}
	dst = append(dst, `,"timestamp":`...)
	dst, err = appendJSONTime(dst, r.Timestamp)
	if err != nil {
		return dst, err
	}
	if r.AdditionalInfo != "" {
		dst = append(dst, `,"additional_info":`...)
		dst = appendJSONString(dst, r.AdditionalInfo)
	}
	if len(r.SuspectChannels) > 0 {
		dst = append(dst, `,"suspect_channels":[`...)
		for i, ch := range r.SuspectChannels {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendJSONString(dst, ch)
		}
		dst = append(dst, ']')
	}
	if len(r.Prognostics) > 0 {
		dst = append(dst, `,"prognostics":[`...)
		for i, p := range r.Prognostics {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, `{"probability":`...)
			dst, err = appendJSONFloat(dst, p.Probability)
			if err != nil {
				return dst, err
			}
			dst = append(dst, `,"time":`...)
			dst, err = appendJSONFloat(dst, p.HorizonSeconds)
			if err != nil {
				return dst, err
			}
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	dst = append(dst, '}')
	return dst, nil
}

// appendJSONFloat appends a float in shortest round-trip form, rejecting the
// values JSON cannot carry.
func appendJSONFloat(dst []byte, f float64) ([]byte, error) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return dst, fmt.Errorf("proto: unsupported value %g in report frame", f)
	}
	return strconv.AppendFloat(dst, f, 'g', -1, 64), nil
}

// appendJSONTime appends a time value exactly as time.Time.MarshalJSON does:
// quoted RFC 3339 with nanoseconds, rejecting years outside [0, 9999].
func appendJSONTime(dst []byte, t time.Time) ([]byte, error) {
	if y := t.Year(); y < 0 || y >= 10000 {
		return dst, fmt.Errorf("proto: timestamp year %d outside RFC 3339 range", y)
	}
	dst = append(dst, '"')
	dst = t.AppendFormat(dst, time.RFC3339Nano)
	dst = append(dst, '"')
	return dst, nil
}

// appendJSONString appends a quoted, escaped JSON string. Escaping matches
// what readFrame's json.Unmarshal round-trips to the same value: quote,
// backslash, and control characters are escaped, and invalid UTF-8 is
// replaced with U+FFFD the way encoding/json replaces it.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); {
		b := s[i]
		if b < utf8.RuneSelf {
			switch {
			case b == '"':
				dst = append(dst, '\\', '"')
			case b == '\\':
				dst = append(dst, '\\', '\\')
			case b == '\n':
				dst = append(dst, '\\', 'n')
			case b == '\r':
				dst = append(dst, '\\', 'r')
			case b == '\t':
				dst = append(dst, '\\', 't')
			case b < 0x20:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			default:
				dst = append(dst, b)
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			dst = append(dst, "�"...)
			i++
			continue
		}
		dst = append(dst, s[i:i+size]...)
		i += size
	}
	return append(dst, '"')
}
