package proto

import (
	"encoding/json"
	"reflect"
	"sync"
	"testing"
)

// TestDedupStateRoundtrip: State → JSON → Restore reproduces the window
// exactly — same suppression decisions, same re-exported snapshot — which
// is what lets a recovered PDME keep rejecting spool replays of reports it
// fused before a crash.
func TestDedupStateRoundtrip(t *testing.T) {
	d := NewDedup(8)
	for seq := uint64(1); seq <= 20; seq++ {
		d.Mark("dc-1", 41, seq)
	}
	d.Mark("dc-2", 7, 3)
	d.Mark("dc-2", 7, 5)
	if !d.Seen("dc-1", 41, 2) { // below the floor: counts a hit
		t.Fatal("below-floor sequence not suppressed before snapshot")
	}
	st := d.State()

	blob, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var decoded DedupState
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	restored := NewDedup(8)
	restored.Restore(decoded)

	for seq := uint64(1); seq <= 20; seq++ {
		if !restored.Seen("dc-1", 41, seq) {
			t.Errorf("dc-1 seq %d: suppression lost across the roundtrip", seq)
		}
	}
	if restored.Seen("dc-1", 41, 21) {
		t.Error("unmarked future sequence suppressed after restore")
	}
	if !restored.Seen("dc-2", 7, 3) || !restored.Seen("dc-2", 7, 5) {
		t.Error("dc-2 marks lost across the roundtrip")
	}
	if restored.Seen("dc-2", 7, 4) {
		t.Error("unmarked dc-2 sequence suppressed after restore")
	}
	if restored.Seen("dc-2", 8, 3) {
		t.Error("restored window leaked across boot incarnations")
	}
	// A second export (before the Seen probes above bumped hit counts)
	// must encode identically: checkpoint bytes are deterministic.
	if again := restored.State(); !reflect.DeepEqual(st.DCs, again.DCs) {
		t.Errorf("re-exported windows differ:\n got %+v\nwant %+v", again.DCs, st.DCs)
	}
}

// TestDedupStateDeterministic: two windows built by marking the same
// sequences in different orders export byte-identical snapshots.
func TestDedupStateDeterministic(t *testing.T) {
	a, b := NewDedup(16), NewDedup(16)
	seqs := []uint64{5, 1, 9, 3, 7}
	for _, s := range seqs {
		a.Mark("dc-2", 1, s)
		a.Mark("dc-1", 1, s)
	}
	for i := len(seqs) - 1; i >= 0; i-- {
		b.Mark("dc-1", 1, seqs[i])
		b.Mark("dc-2", 1, seqs[i])
	}
	ab, err := json.Marshal(a.State())
	if err != nil {
		t.Fatal(err)
	}
	bb, err := json.Marshal(b.State())
	if err != nil {
		t.Fatal(err)
	}
	if string(ab) != string(bb) {
		t.Errorf("snapshot encoding depends on mark order:\n a=%s\n b=%s", ab, bb)
	}
}

// taggedCollectSink records the delivery tag alongside each report, so the
// test can see exactly what the server dispatched.
type taggedCollectSink struct {
	mu   sync.Mutex
	tags []struct {
		dcid      string
		boot, seq uint64
	}
}

func (s *taggedCollectSink) Deliver(r *Report) error {
	return s.DeliverTagged(r, r.DCID, 0, 0)
}

func (s *taggedCollectSink) DeliverTagged(r *Report, dcid string, boot, seq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tags = append(s.tags, struct {
		dcid      string
		boot, seq uint64
	}{dcid, boot, seq})
	return nil
}

// TestTaggedSinkDispatch: a server whose sink implements TaggedSink hands
// it the wire delivery tag (dcid, boot, seq) for tagged sends and zeros
// for untagged ones — the tag is what a journaling sink persists so its
// replay can re-mark the dedup window.
func TestTaggedSinkDispatch(t *testing.T) {
	sink := &taggedCollectSink{}
	srv := NewServer(sink)
	srv.SetDedup(NewDedup(0))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	r := validReport()
	if dup, err := c.SendTagged(r, 9, 42); err != nil || dup {
		t.Fatalf("tagged send: dup=%v err=%v", dup, err)
	}
	if err := c.Send(r); err != nil {
		t.Fatalf("untagged send: %v", err)
	}

	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.tags) != 2 {
		t.Fatalf("sink saw %d deliveries, want 2", len(sink.tags))
	}
	if got := sink.tags[0]; got.dcid != r.DCID || got.boot != 9 || got.seq != 42 {
		t.Errorf("tagged delivery carried (%q, %d, %d), want (%q, 9, 42)",
			got.dcid, got.boot, got.seq, r.DCID)
	}
	if got := sink.tags[1]; got.boot != 0 || got.seq != 0 {
		t.Errorf("untagged delivery carried tag (%d, %d), want zeros", got.boot, got.seq)
	}
}
