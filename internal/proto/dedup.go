package proto

import "sync"

// DefaultDedupWindow is the per-DC sequence window NewDedup uses when the
// caller passes a non-positive size.
const DefaultDedupWindow = 4096

// Dedup is a per-DC sliding sequence window that turns the wire's
// at-least-once delivery into an exactly-once fusion effect: a report
// resent after a lost ack (or replayed from a DC's spool after a restart)
// is recognized by its (DC id, sequence) tag and acknowledged without a
// second sink delivery — Dempster-Shafer fusion never double-counts
// evidence.
//
// The window tracks, per DC, the highest sequence marked plus the set of
// marked sequences within `window` of it. A sequence at or below the
// window floor is assumed already delivered: DC spools replay oldest-first,
// so a sequence can only fall that far behind after thousands of later
// sequences were acked, which requires it to have been acked itself (or
// deliberately dropped by the sender's capacity policy — in which case
// suppressing it keeps the drop decision final).
//
// Sequences are scoped to a sender boot incarnation: a DC whose sequence
// counter did not survive a restart (volatile spool) announces a new boot
// id, and the first delivery under the new boot resets that DC's window —
// otherwise the restarted counter would restart below the old floor and
// every fresh report would be silently swallowed as "already delivered".
// Persistent spools keep their boot id across restarts, preserving
// suppression of replayed-but-already-fused reports. One live sender per
// DC id is assumed; two interleaving boots would flap the window.
//
// Safe for concurrent use by all server connections; share one Dedup across
// server restarts to keep suppression working through a PDME bounce.
type Dedup struct {
	//lint:allow snapshotparity window capacity is construction config; Restore keeps it and prunes restored sequences against it on the next Mark
	window uint64

	mu   sync.Mutex
	dcs  map[string]*dedupWindow
	hits int64
}

type dedupWindow struct {
	boot   uint64
	maxSeq uint64
	seen   map[uint64]struct{}
}

// NewDedup returns a window of the given size per DC (<=0: the default).
func NewDedup(window int) *Dedup {
	if window <= 0 {
		window = DefaultDedupWindow
	}
	return &Dedup{window: uint64(window), dcs: make(map[string]*dedupWindow)}
}

// Seen reports whether (dcid, seq) was already marked under the same boot
// (or is below the window floor and therefore presumed delivered). A
// different boot is a restarted sender: nothing it sends is a duplicate.
// A hit is counted.
func (d *Dedup) Seen(dcid string, boot, seq uint64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	w, ok := d.dcs[dcid]
	if !ok || w.boot != boot {
		return false
	}
	if w.maxSeq > d.window && seq <= w.maxSeq-d.window {
		d.hits++
		return true
	}
	if _, dup := w.seen[seq]; dup {
		d.hits++
		return true
	}
	return false
}

// Mark records a delivered sequence, advancing the window and pruning
// entries that fell below its floor. A boot change resets the DC's window
// to the new incarnation.
func (d *Dedup) Mark(dcid string, boot, seq uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	w, ok := d.dcs[dcid]
	if !ok || w.boot != boot {
		w = &dedupWindow{boot: boot, seen: make(map[uint64]struct{})}
		d.dcs[dcid] = w
	}
	w.seen[seq] = struct{}{}
	if seq > w.maxSeq {
		w.maxSeq = seq
		if w.maxSeq > d.window {
			floor := w.maxSeq - d.window
			for s := range w.seen {
				if s <= floor {
					delete(w.seen, s)
				}
			}
		}
	}
}

// Hits returns how many duplicate deliveries were suppressed.
func (d *Dedup) Hits() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.hits
}
