package proto

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"testing"
)

// frameBytes encodes one envelope to its wire form for use as a fuzz seed.
func frameBytes(tb testing.TB, env envelope) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := writeFrame(&buf, env); err != nil {
		tb.Fatalf("seed frame: %v", err)
	}
	return buf.Bytes()
}

// FuzzDecodeFrame feeds arbitrary bytes to the wire-frame decoder. The
// decoder must never panic, must reject oversized length prefixes before
// allocating, and any frame it accepts must survive an encode/decode
// round trip to the same canonical JSON.
func FuzzDecodeFrame(f *testing.F) {
	f.Add(frameBytes(f, envelope{Kind: "report", Report: validReport(), DCID: "dc-1", Boot: 7, Seq: 3}))
	f.Add(frameBytes(f, envelope{Kind: "ack", DCID: "dc-1", Seq: 3, Dup: true}))
	f.Add(frameBytes(f, envelope{Kind: "error", Error: "validate: severity out of range"}))
	// Torn header, torn body, and a length prefix past the frame limit.
	f.Add([]byte{0x00, 0x00})
	f.Add([]byte{0x00, 0x00, 0x00, 0x05, '{', '}'})
	f.Add(binary.BigEndian.AppendUint32(nil, MaxFrameSize+1))
	f.Add([]byte(`{"kind":"report"}`)) // no length prefix at all

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return // rejected input: any error is acceptable, panics are not
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, env); err != nil {
			t.Fatalf("decoded envelope failed to re-encode: %v", err)
		}
		env2, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		j1, err := json.Marshal(env)
		if err != nil {
			t.Fatalf("marshal first decode: %v", err)
		}
		j2, err := json.Marshal(env2)
		if err != nil {
			t.Fatalf("marshal second decode: %v", err)
		}
		if !bytes.Equal(j1, j2) {
			t.Fatalf("round trip not stable:\n first=%s\nsecond=%s", j1, j2)
		}
	})
}
