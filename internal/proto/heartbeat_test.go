package proto

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

var hbT0 = time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)

func validHeartbeat() *Heartbeat {
	return &Heartbeat{
		DCID:        "dc-0",
		Boot:        42,
		Incarnation: 7,
		SentAt:      hbT0,
		SpoolDepth:  3,
		Suites: []SuiteStatus{
			{Name: "vibration-test", LastRun: hbT0.Add(-time.Minute), Runs: 12},
			{Name: "process-scan", Runs: 0},
		},
	}
}

func TestHeartbeatValidate(t *testing.T) {
	if err := validHeartbeat().Validate(); err != nil {
		t.Fatalf("valid heartbeat rejected: %v", err)
	}
	bad := []*Heartbeat{
		{SentAt: hbT0}, // missing DC id
		{DCID: "dc-0"}, // missing send time
		{DCID: "dc-0", SentAt: hbT0, SpoolDepth: -1}, // negative depth
	}
	for i, hb := range bad {
		if err := hb.Validate(); err == nil {
			t.Errorf("heartbeat %d should fail validation", i)
		}
	}
}

func TestHeartbeatFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, envelope{Kind: "heartbeat", Heartbeat: validHeartbeat()}); err != nil {
		t.Fatal(err)
	}
	out, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != "heartbeat" || out.Heartbeat == nil {
		t.Fatalf("round trip: %+v", out)
	}
	hb := out.Heartbeat
	if hb.DCID != "dc-0" || hb.Boot != 42 || hb.Incarnation != 7 || hb.SpoolDepth != 3 {
		t.Fatalf("fields lost: %+v", hb)
	}
	if len(hb.Suites) != 2 || hb.Suites[0].Runs != 12 || !hb.Suites[0].LastRun.Equal(hbT0.Add(-time.Minute)) {
		t.Fatalf("suites lost: %+v", hb.Suites)
	}
	if !hb.Suites[1].LastRun.IsZero() {
		t.Fatalf("never-run suite should keep zero LastRun: %+v", hb.Suites[1])
	}
}

// hbSinkFunc adapts a function to HeartbeatSink.
type hbSinkFunc func(*Heartbeat) error

func (f hbSinkFunc) ObserveHeartbeat(hb *Heartbeat) error { return f(hb) }

func TestClientServerHeartbeat(t *testing.T) {
	var mu sync.Mutex
	var got []*Heartbeat
	srv := NewServer(SinkFunc(func(*Report) error { return nil }))
	srv.SetHeartbeatSink(hbSinkFunc(func(hb *Heartbeat) error {
		mu.Lock()
		got = append(got, hb)
		mu.Unlock()
		return nil
	}))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		hb := validHeartbeat()
		hb.SentAt = hbT0.Add(time.Duration(i) * time.Minute)
		if err := c.SendHeartbeat(hb); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	n := len(got)
	mu.Unlock()
	if n != 3 {
		t.Fatalf("sink saw %d heartbeats, want 3", n)
	}
	// Invalid heartbeat is rejected client-side.
	if err := c.SendHeartbeat(&Heartbeat{DCID: "dc-0"}); err == nil {
		t.Error("invalid heartbeat should not send")
	}
	// Reports still flow on the same connection after heartbeats.
	if err := c.Send(validReport()); err != nil {
		t.Fatalf("report after heartbeat: %v", err)
	}
}

func TestHeartbeatWithoutSinkStillAcked(t *testing.T) {
	// A server with no heartbeat sink must ack heartbeats, so older PDMEs
	// tolerate newer DCs.
	srv := NewServer(SinkFunc(func(*Report) error { return nil }))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SendHeartbeat(validHeartbeat()); err != nil {
		t.Fatalf("sinkless server should ack heartbeat: %v", err)
	}
}

func TestHeartbeatSinkErrorSurfaces(t *testing.T) {
	srv := NewServer(SinkFunc(func(*Report) error { return nil }))
	srv.SetHeartbeatSink(hbSinkFunc(func(*Heartbeat) error { return fmt.Errorf("registry down") }))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.SendHeartbeat(validHeartbeat())
	if err == nil || !errors.Is(err, ErrRejected) {
		t.Fatalf("sink error should surface as rejection, got %v", err)
	}
}
