package proto

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func validReport() *Report {
	return &Report{
		DCID:               "dc-1",
		KnowledgeSourceID:  "ks/dli",
		SensedObjectID:     "motor/1",
		MachineConditionID: "motor imbalance",
		Severity:           0.6,
		Belief:             0.9,
		Explanation:        "1x radial vibration elevated",
		Recommendations:    "balance rotor at next availability",
		Timestamp:          time.Date(1998, 8, 15, 12, 0, 0, 0, time.UTC),
		Prognostics: PrognosticVector{
			{Probability: 0.1, HorizonSeconds: 14 * 86400},
			{Probability: 0.5, HorizonSeconds: 30 * 86400},
			{Probability: 0.9, HorizonSeconds: 60 * 86400},
		},
	}
}

func TestSeverityGrading(t *testing.T) {
	cases := []struct {
		sev  float64
		want SeverityGrade
	}{
		{0, SeverityNone}, {-0.1, SeverityNone},
		{0.1, SeveritySlight}, {0.24, SeveritySlight},
		{0.25, SeverityModerate}, {0.49, SeverityModerate},
		{0.5, SeveritySerious}, {0.74, SeveritySerious},
		{0.75, SeverityExtreme}, {1.0, SeverityExtreme},
	}
	for _, c := range cases {
		if got := GradeSeverity(c.sev); got != c.want {
			t.Errorf("GradeSeverity(%g) = %v, want %v", c.sev, got, c.want)
		}
	}
	names := map[SeverityGrade]string{
		SeverityNone: "None", SeveritySlight: "Slight", SeverityModerate: "Moderate",
		SeveritySerious: "Serious", SeverityExtreme: "Extreme", SeverityGrade(99): "Unknown",
	}
	for g, want := range names {
		if g.String() != want {
			t.Errorf("%d: %q", g, g.String())
		}
	}
}

func TestExpectedFailureHorizon(t *testing.T) {
	// §6.1: no foreseeable failure, months, weeks, days.
	if SeveritySlight.ExpectedFailureHorizon() != 0 {
		t.Error("slight should have no horizon")
	}
	m := SeverityModerate.ExpectedFailureHorizon()
	w := SeveritySerious.ExpectedFailureHorizon()
	d := SeverityExtreme.ExpectedFailureHorizon()
	if !(m > w && w > d && d > 0) {
		t.Errorf("horizon ordering wrong: months=%v weeks=%v days=%v", m, w, d)
	}
	if m < 30*24*time.Hour {
		t.Error("moderate should be months-scale")
	}
	if w > 30*24*time.Hour || w < 7*24*time.Hour {
		t.Error("serious should be weeks-scale")
	}
	if d > 7*24*time.Hour {
		t.Error("extreme should be days-scale")
	}
}

func TestPrognosticVectorValidate(t *testing.T) {
	good := PrognosticVector{{0.1, 100}, {0.5, 200}, {0.9, 300}}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	if err := (PrognosticVector{}).Validate(); err != nil {
		t.Error("empty vector should validate")
	}
	bad := []PrognosticVector{
		{{-0.1, 100}},
		{{1.1, 100}},
		{{math.NaN(), 100}},
		{{0.5, 0}},
		{{0.5, -10}},
		{{0.5, math.Inf(1)}},
		{{0.1, 200}, {0.5, 100}}, // horizons decrease
		{{0.5, 100}, {0.1, 200}}, // probability decreases
		{{0.1, 100}, {0.2, 100}}, // duplicate horizon
	}
	for i, v := range bad {
		if err := v.Validate(); err == nil {
			t.Errorf("bad vector %d should fail: %v", i, v)
		}
	}
}

func TestProbabilityAtInterpolation(t *testing.T) {
	v := PrognosticVector{
		{Probability: 0.1, HorizonSeconds: 100},
		{Probability: 0.5, HorizonSeconds: 200},
	}
	if got := v.ProbabilityAt(0); got != 0 {
		t.Errorf("t=0: %g", got)
	}
	// Interpolation from implicit (0,0) to first point.
	if got := v.ProbabilityAt(50 * time.Second); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("t=50: %g", got)
	}
	if got := v.ProbabilityAt(100 * time.Second); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("t=100: %g", got)
	}
	if got := v.ProbabilityAt(150 * time.Second); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("t=150: %g", got)
	}
	// Extrapolation continues the last slope, clamped at 1.
	if got := v.ProbabilityAt(300 * time.Second); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("t=300: %g", got)
	}
	if got := v.ProbabilityAt(10000 * time.Second); got != 1 {
		t.Errorf("t=10000: %g, want clamp to 1", got)
	}
	// Single point: slope from origin.
	single := PrognosticVector{{Probability: 0.5, HorizonSeconds: 100}}
	if got := single.ProbabilityAt(200 * time.Second); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("single extrapolation: %g", got)
	}
	if got := (PrognosticVector{}).ProbabilityAt(time.Hour); got != 0 {
		t.Errorf("empty vector: %g", got)
	}
}

func TestProbabilityAtMonotoneProperty(t *testing.T) {
	// Property: the interpolated curve is monotone non-decreasing in t for
	// any valid vector.
	prop := func(seed int64) bool {
		rng := newRand(seed)
		v := randomVector(rng)
		if v.Validate() != nil {
			return true
		}
		prev := -1.0
		for ts := 0.0; ts < 500; ts += 7 {
			p := v.ProbabilityAt(time.Duration(ts * float64(time.Second)))
			if p < prev-1e-12 || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeToProbability(t *testing.T) {
	v := PrognosticVector{{Probability: 0.5, HorizonSeconds: 100}}
	d, ok := v.TimeToProbability(0.25, 200*time.Second)
	if !ok {
		t.Fatal("should reach 0.25")
	}
	if d < 45*time.Second || d > 55*time.Second {
		t.Errorf("time to 0.25: %v", d)
	}
	if _, ok := (PrognosticVector{}).TimeToProbability(0.5, time.Hour); ok {
		t.Error("empty vector reaches nothing")
	}
	flat := PrognosticVector{{Probability: 0.0, HorizonSeconds: 100}, {Probability: 0.0, HorizonSeconds: 200}}
	if _, ok := flat.TimeToProbability(0.5, 150*time.Second); ok {
		t.Error("flat-zero vector cannot reach 0.5 within range")
	}
}

func TestSorted(t *testing.T) {
	v := PrognosticVector{{0.9, 300}, {0.1, 100}, {0.5, 200}}
	s := v.Sorted()
	if s[0].HorizonSeconds != 100 || s[2].HorizonSeconds != 300 {
		t.Errorf("sorted %v", s)
	}
	if v[0].HorizonSeconds != 300 {
		t.Error("Sorted must not mutate receiver")
	}
}

func TestReportValidate(t *testing.T) {
	if err := validReport().Validate(); err != nil {
		t.Fatal(err)
	}
	mut := func(f func(*Report)) *Report {
		r := validReport()
		f(r)
		return r
	}
	bad := []*Report{
		mut(func(r *Report) { r.KnowledgeSourceID = "" }),
		mut(func(r *Report) { r.SensedObjectID = "" }),
		mut(func(r *Report) { r.MachineConditionID = "" }),
		mut(func(r *Report) { r.Severity = 1.5 }),
		mut(func(r *Report) { r.Severity = math.NaN() }),
		mut(func(r *Report) { r.Belief = -0.1 }),
		mut(func(r *Report) { r.Timestamp = time.Time{} }),
		mut(func(r *Report) { r.Prognostics = PrognosticVector{{2, 100}} }),
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad report %d should fail", i)
		}
	}
	if validReport().Grade() != SeveritySerious {
		t.Error("grade of severity 0.6")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := envelope{Kind: "report", Report: validReport()}
	if err := writeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != "report" || out.Report == nil || out.Report.MachineConditionID != "motor imbalance" {
		t.Fatalf("round trip: %+v", out)
	}
	if len(out.Report.Prognostics) != 3 {
		t.Error("prognostics lost")
	}
	// Corrupted length prefix is bounded.
	var bad bytes.Buffer
	bad.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := readFrame(&bad); err == nil {
		t.Error("oversized frame should error")
	}
	// Truncated body.
	var trunc bytes.Buffer
	trunc.Write([]byte{0, 0, 0, 10, 'x'})
	if _, err := readFrame(&trunc); err == nil {
		t.Error("truncated frame should error")
	}
	// Invalid JSON body.
	var badJSON bytes.Buffer
	badJSON.Write([]byte{0, 0, 0, 3})
	badJSON.WriteString("{{{")
	if _, err := readFrame(&badJSON); err == nil {
		t.Error("bad json should error")
	}
}

func TestClientServerRoundTrip(t *testing.T) {
	var received []*Report
	var mu sync.Mutex
	srv := NewServer(SinkFunc(func(r *Report) error {
		mu.Lock()
		received = append(received, r)
		mu.Unlock()
		return nil
	}))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 10; i++ {
		r := validReport()
		r.Severity = float64(i) / 10
		if err := c.Send(r); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	n := len(received)
	mu.Unlock()
	if n != 10 {
		t.Fatalf("received %d reports", n)
	}
	// Invalid report is rejected client-side before hitting the wire.
	bad := validReport()
	bad.Belief = 5
	if err := c.Send(bad); err == nil {
		t.Error("invalid report should not send")
	}
	// Sink failure surfaces as an error reply.
	srv2 := NewServer(SinkFunc(func(*Report) error { return fmt.Errorf("oosm unavailable") }))
	addr2, err := srv2.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	c2, err := Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Send(validReport()); err == nil {
		t.Error("sink failure should surface")
	}
}

func TestConcurrentClients(t *testing.T) {
	var count atomic.Int64
	srv := NewServer(SinkFunc(func(*Report) error {
		count.Add(1)
		return nil
	}))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			for i := 0; i < 25; i++ {
				if err := c.Send(validReport()); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if n := count.Load(); n != 200 {
		t.Fatalf("received %d, want 200", n)
	}
}

func TestSendWithRetry(t *testing.T) {
	var fails int64 = 2
	srv := NewServer(SinkFunc(func(*Report) error {
		if atomic.AddInt64(&fails, -1) >= 0 {
			return fmt.Errorf("transient")
		}
		return nil
	}))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SendWithRetry(validReport(), 5, time.Millisecond); err != nil {
		t.Fatalf("retry should eventually succeed: %v", err)
	}
	bad := validReport()
	bad.Severity = 9
	if err := c.SendWithRetry(bad, 5, time.Millisecond); err == nil {
		t.Error("validation failure must not be retried into success")
	}
}

func TestBus(t *testing.T) {
	b := NewBus()
	var a, c atomic.Int32
	b.Attach(SinkFunc(func(*Report) error { a.Add(1); return nil }))
	b.Attach(SinkFunc(func(*Report) error { c.Add(1); return nil }))
	if err := b.Deliver(validReport()); err != nil {
		t.Fatal(err)
	}
	if a.Load() != 1 || c.Load() != 1 {
		t.Errorf("fanout a=%d c=%d", a.Load(), c.Load())
	}
	bad := validReport()
	bad.MachineConditionID = ""
	if err := b.Deliver(bad); err == nil {
		t.Error("bus must validate")
	}
	if a.Load() != 1 {
		t.Error("invalid report must not be delivered")
	}
}

func TestServerCloseUnblocks(t *testing.T) {
	srv := NewServer(SinkFunc(func(*Report) error { return nil }))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(validReport()); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		srv.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return")
	}
	// Sends after close fail.
	if err := c.Send(validReport()); err == nil {
		t.Error("send after server close should fail")
	}
}

// newRand is a tiny deterministic generator for property tests, avoiding an
// extra math/rand import dance in each property.
type testRand struct{ state uint64 }

func newRand(seed int64) *testRand {
	return &testRand{state: uint64(seed)*2862933555777941757 + 3037000493}
}

func (r *testRand) next() uint64 {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return r.state
}

func (r *testRand) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

func (r *testRand) intn(n int) int { return int(r.next() % uint64(n)) }

func randomVector(rng *testRand) PrognosticVector {
	n := rng.intn(5)
	v := make(PrognosticVector, 0, n)
	horizon := 0.0
	prob := 0.0
	for i := 0; i < n; i++ {
		horizon += 10 + rng.float()*100
		prob += rng.float() * (1 - prob) * 0.8
		v = append(v, PrognosticPoint{Probability: prob, HorizonSeconds: horizon})
	}
	return v
}

func BenchmarkSendLocalTCP(b *testing.B) {
	srv := NewServer(SinkFunc(func(*Report) error { return nil }))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	r := validReport()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Send(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProbabilityAt(b *testing.B) {
	v := validReport().Prognostics
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.ProbabilityAt(45 * 24 * time.Hour)
	}
}
