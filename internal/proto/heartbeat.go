package proto

import (
	"fmt"
	"time"
)

// Heartbeat is the fleet-health wire frame: a DC announces, on an interval,
// that it is alive, which incarnation of its software and spool is running,
// how much undelivered work it is holding, and when each analysis suite
// last ran. The PDME-side health registry turns the stream (and its
// silences) into per-DC liveness states that discount stale evidence in
// knowledge fusion — the §5.5 believability factor applied to the
// monitoring fleet itself rather than to individual diagnoses.
type Heartbeat struct {
	// DCID identifies the reporting data concentrator.
	DCID string `json:"dc_id"`
	// Boot is the DC's sequence-counter incarnation (the same id that tags
	// report frames for dedup); 0 when the sender has no spool.
	Boot uint64 `json:"boot,omitempty"`
	// Incarnation identifies the sender process instance: it changes on
	// every process restart even when the spool (and Boot) persists, so the
	// health registry can count restarts and detect flapping. 0 is unknown.
	Incarnation uint64 `json:"incarnation,omitempty"`
	// SentAt is the DC's clock when the heartbeat was issued (virtual time
	// in simulation, wall time aboard ship).
	SentAt time.Time `json:"sent_at"`
	// SpoolDepth is the number of reports awaiting acknowledgement in the
	// DC's store-and-forward spool at send time.
	SpoolDepth int `json:"spool_depth,omitempty"`
	// Suites carries per-analysis-suite last-run information.
	Suites []SuiteStatus `json:"suites,omitempty"`
}

// SuiteStatus is one scheduled analysis suite's last-run record.
type SuiteStatus struct {
	// Name is the suite's scheduler task name (e.g. "vibration-test").
	Name string `json:"name"`
	// LastRun is when the suite last executed (zero: never).
	LastRun time.Time `json:"last_run,omitzero"`
	// Runs counts executions since DC start.
	Runs int64 `json:"runs,omitempty"`
}

// Validate checks the heartbeat's required fields.
func (hb *Heartbeat) Validate() error {
	if hb.DCID == "" {
		return fmt.Errorf("proto: heartbeat missing DC id")
	}
	if hb.SentAt.IsZero() {
		return fmt.Errorf("proto: heartbeat missing send time")
	}
	if hb.SpoolDepth < 0 {
		return fmt.Errorf("proto: heartbeat spool depth %d negative", hb.SpoolDepth)
	}
	return nil
}

// HeartbeatSink consumes validated heartbeats; the PDME's health registry
// implements this interface.
type HeartbeatSink interface {
	ObserveHeartbeat(*Heartbeat) error
}

// SendHeartbeat delivers one heartbeat frame and waits for the server's
// ack. Servers without a heartbeat sink still ack, so heartbeats are safe
// to send to any report server.
func (c *Client) SendHeartbeat(hb *Heartbeat) error {
	if err := hb.Validate(); err != nil {
		return err
	}
	reply, err := c.exchange(envelope{Kind: "heartbeat", Heartbeat: hb})
	if err != nil {
		return err
	}
	switch reply.Kind {
	case "ack":
		return nil
	case "error":
		return fmt.Errorf("%w: %s", ErrRejected, reply.Error)
	default:
		return fmt.Errorf("proto: unexpected reply kind %q", reply.Kind)
	}
}
