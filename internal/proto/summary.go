package proto

import (
	"fmt"
	"math"
	"time"
)

// FusedSummary is the PDME→PDME envelope of the hierarchical fleet tier: a
// shard PDME's fused read-side state for one (component, condition) pair,
// forwarded upward to an aggregator PDME. It is the paper's §5.1 step-4
// conclusion re-expressed as wire evidence for the next fusion level —
// Palem's ship→regional→global CBM hierarchy with the shard standing in for
// the ship.
//
// Summaries ride the same uplink spool/redial/dedup machinery as reports:
// the shard id plays the DC id's role on the wire (it keys the spool file,
// the aggregator-side dedup window, and the aggregator's health registry),
// and the boot-epoch/sequence-watermark contract gives the aggregator the
// same exactly-once effect over an at-least-once link. The aggregator keeps
// the latest summary per pair (UpdatedAt-ordered), so replays and restarts
// converge to the same global state.
type FusedSummary struct {
	// ShardID names the forwarding shard PDME (the sender identity).
	ShardID string `json:"shard_id"`
	// Component is the sensed object the conclusion is about.
	Component string `json:"component"`
	// Condition is the machine condition concluded on.
	Condition string `json:"condition"`
	// Group is the condition's logical failure group.
	Group string `json:"group,omitempty"`
	// Belief, Plausibility, and Unknown are the shard's fused
	// Dempster-Shafer state for the pair: lower bound, upper bound, and the
	// residual Θ mass of the pair's whole group frame.
	Belief       float64 `json:"belief"`
	Plausibility float64 `json:"plausibility"`
	Unknown      float64 `json:"unknown"`
	// Reports counts the reports the shard fused into this conclusion.
	Reports int `json:"reports,omitempty"`
	// Reliability and Degraded carry the shard's own source-level discount
	// state (1/false when every contributing DC was fresh).
	Reliability float64 `json:"reliability"`
	Degraded    bool    `json:"degraded,omitempty"`
	// Prognostics is the shard's fused §7.3 vector for the pair.
	Prognostics PrognosticVector `json:"prognostics,omitempty"`
	// UpdatedAt is the event time of the newest evidence folded into this
	// summary (the conclusion object's updated_at). The aggregator orders
	// summaries per pair by it and feeds it to staleness discounting.
	UpdatedAt time.Time `json:"updated_at"`
}

// Validate checks the summary's required fields and numeric ranges.
func (s *FusedSummary) Validate() error {
	if s.ShardID == "" {
		return fmt.Errorf("proto: summary missing shard id")
	}
	if s.Component == "" {
		return fmt.Errorf("proto: summary missing component")
	}
	if s.Condition == "" {
		return fmt.Errorf("proto: summary missing condition")
	}
	for _, f := range [...]struct {
		name string
		v    float64
	}{{"belief", s.Belief}, {"plausibility", s.Plausibility},
		{"unknown", s.Unknown}, {"reliability", s.Reliability}} {
		if math.IsNaN(f.v) || f.v < 0 || f.v > 1 {
			return fmt.Errorf("proto: summary %s %g outside [0,1]", f.name, f.v)
		}
	}
	if s.Belief > s.Plausibility+1e-9 {
		return fmt.Errorf("proto: summary belief %g exceeds plausibility %g",
			s.Belief, s.Plausibility)
	}
	if s.Reports < 0 {
		return fmt.Errorf("proto: summary report count %d negative", s.Reports)
	}
	if s.UpdatedAt.IsZero() {
		return fmt.Errorf("proto: summary missing updated_at")
	}
	return s.Prognostics.Validate()
}

// SummarySink consumes validated fused summaries with their delivery tag;
// the aggregator tier implements it. shardID is the wire-level sender
// identity (falling back to the summary's own ShardID for untagged frames);
// boot and seq are zero for untagged frames.
type SummarySink interface {
	DeliverSummary(s *FusedSummary, shardID string, boot, seq uint64) error
}

// SetSummarySink routes summary frames to an aggregator. Call before Start.
// Servers without a summary sink reject summary frames, so a shard-tier
// uplink pointed at a plain PDME fails loudly instead of silently dropping
// the hierarchy's upward flow.
func (s *Server) SetSummarySink(ss SummarySink) { s.sumSink = ss }

// SendSummary delivers one fused summary stamped with the shard's boot
// incarnation and monotonic sequence number, enabling aggregator-side dedup
// of at-least-once redelivery — the PDME→PDME twin of SendTagged. It
// returns whether the server acked it as an already-seen duplicate.
func (c *Client) SendSummary(s *FusedSummary, shardID string, boot, seq uint64) (dup bool, err error) {
	if err := s.Validate(); err != nil {
		return false, err
	}
	if shardID == "" {
		shardID = s.ShardID
	}
	reply, err := c.exchange(envelope{Kind: "summary", Summary: s,
		DCID: shardID, Boot: boot, Seq: seq})
	if err != nil {
		return false, err
	}
	switch reply.Kind {
	case "ack":
		return reply.Dup, nil
	case "error":
		return false, fmt.Errorf("%w: %s", ErrRejected, reply.Error)
	default:
		return false, fmt.Errorf("proto: unexpected reply kind %q", reply.Kind)
	}
}
