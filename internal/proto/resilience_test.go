package proto

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// collectSink records delivered reports.
type collectSink struct {
	mu      sync.Mutex
	reports []*Report
}

func (c *collectSink) Deliver(r *Report) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := *r
	c.reports = append(c.reports, &cp)
	return nil
}

func (c *collectSink) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.reports)
}

// TestSendWithRetryRedialsAcrossServerRestart is the wire.go:256 regression:
// the old SendWithRetry retried on the same dead connection, so any
// connection loss made every retry fail.
func TestSendWithRetryRedialsAcrossServerRestart(t *testing.T) {
	sink := &collectSink{}
	srv := NewServer(sink)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(validReport()); err != nil {
		t.Fatal(err)
	}
	// Kill the server (and with it the client's connection), then bring a
	// fresh one up on the same address.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(sink)
	if _, err := srv2.Start(addr); err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if err := c.SendWithRetry(validReport(), 5, 10*time.Millisecond); err != nil {
		t.Fatalf("SendWithRetry did not recover across a server restart: %v", err)
	}
	if got := sink.count(); got != 2 {
		t.Errorf("sink saw %d reports, want 2", got)
	}
}

// TestSendWithRetryDoesNotRedialOnRejection: application rejections keep
// the connection (the link is fine).
func TestSendWithRetryDoesNotRedialOnRejection(t *testing.T) {
	srv := NewServer(SinkFunc(func(*Report) error { return fmt.Errorf("sink down") }))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.SendWithRetry(validReport(), 2, time.Millisecond)
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("want ErrRejected, got %v", err)
	}
}

func TestBusDeliversToAllSinksAndJoinsErrors(t *testing.T) {
	bus := NewBus()
	var delivered []string
	bus.Attach(SinkFunc(func(*Report) error {
		delivered = append(delivered, "a")
		return fmt.Errorf("sink a exploded")
	}))
	bus.Attach(SinkFunc(func(*Report) error {
		delivered = append(delivered, "b")
		return nil
	}))
	bus.Attach(SinkFunc(func(*Report) error {
		delivered = append(delivered, "c")
		return fmt.Errorf("sink c exploded")
	}))
	err := bus.Deliver(validReport())
	if len(delivered) != 3 {
		t.Fatalf("delivered to %v, want all three sinks", delivered)
	}
	if err == nil || !contains(err.Error(), "sink a exploded") || !contains(err.Error(), "sink c exploded") {
		t.Errorf("joined error missing failures: %v", err)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestServerIdleTimeoutReleasesDeadPeers: a peer that connects and never
// completes a frame is cut loose instead of pinning a handler goroutine.
func TestServerIdleTimeoutReleasesDeadPeers(t *testing.T) {
	srv := NewServer(&collectSink{})
	srv.SetIdleTimeout(50 * time.Millisecond)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Write half a frame header, then go silent.
	if _, err := conn.Write([]byte{0, 0}); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server kept a dead peer's connection open")
	}
}

func TestDedupWindow(t *testing.T) {
	const boot = uint64(41)
	d := NewDedup(4)
	if d.Seen("dc-1", boot, 1) {
		t.Error("unseen sequence reported as duplicate")
	}
	for seq := uint64(1); seq <= 10; seq++ {
		d.Mark("dc-1", boot, seq)
	}
	for seq := uint64(1); seq <= 10; seq++ {
		if !d.Seen("dc-1", boot, seq) {
			t.Errorf("seq %d: marked sequence not recognized (in-window or below floor)", seq)
		}
	}
	if d.Seen("dc-1", boot, 11) {
		t.Error("future sequence reported as duplicate")
	}
	if d.Seen("dc-2", boot, 5) {
		t.Error("windows leak across DC ids")
	}
	if d.Hits() != 10 {
		t.Errorf("hits = %d, want 10", d.Hits())
	}
}

// TestDedupBootChangeResetsWindow: a DC restart with a volatile spool
// restarts sequences at 1 under a new boot id; the window must treat those
// as fresh rather than swallowing them below the old floor.
func TestDedupBootChangeResetsWindow(t *testing.T) {
	d := NewDedup(4)
	for seq := uint64(1); seq <= 20; seq++ {
		d.Mark("dc-1", 41, seq)
	}
	if !d.Seen("dc-1", 41, 2) {
		t.Fatal("below-floor sequence of the same boot not suppressed")
	}
	if d.Seen("dc-1", 99, 2) {
		t.Fatal("restarted sender's low sequence swallowed as a duplicate")
	}
	d.Mark("dc-1", 99, 1)
	if !d.Seen("dc-1", 99, 1) {
		t.Error("new boot's marks not tracked after the reset")
	}
	if d.Seen("dc-1", 41, 15) {
		t.Error("stale boot still recognized after the window reset")
	}
}

// TestTaggedDedupExactlyOnce: a redelivered tagged report is dup-acked
// without a second sink delivery, and a failed delivery is NOT recorded
// (so it can be retried).
func TestTaggedDedupExactlyOnce(t *testing.T) {
	sink := &collectSink{}
	fail := true
	flaky := SinkFunc(func(r *Report) error {
		if fail {
			fail = false
			return fmt.Errorf("transient sink failure")
		}
		return sink.Deliver(r)
	})
	srv := NewServer(flaky)
	srv.SetDedup(NewDedup(0))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := validReport()
	// First attempt: sink fails — the sequence must not enter the window.
	if _, err := c.SendTagged(r, 7, 1); !errors.Is(err, ErrRejected) {
		t.Fatalf("want rejection from failing sink, got %v", err)
	}
	// Retry delivers.
	dup, err := c.SendTagged(r, 7, 1)
	if err != nil || dup {
		t.Fatalf("retry after sink failure: dup=%v err=%v", dup, err)
	}
	// Redelivery (lost ack) is suppressed.
	dup, err = c.SendTagged(r, 7, 1)
	if err != nil || !dup {
		t.Fatalf("redelivery: dup=%v err=%v, want dup ack", dup, err)
	}
	if got := sink.count(); got != 1 {
		t.Errorf("sink saw %d deliveries, want exactly 1", got)
	}
}
