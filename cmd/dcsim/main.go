// Command dcsim runs a simulated Data Concentrator: a synthetic centrifugal
// chiller instrumented by the full DC analyzer suite, reporting over TCP to
// a pdmed instance. Faults can be seeded at fixed severity or grown along a
// degradation profile.
//
// Usage:
//
//	dcsim -pdme 127.0.0.1:7011 -id dc-1 -machine "chiller/1" \
//	      -fault "motor imbalance=0.7" -hours 48 -speedup 3600
//
// With -speedup 0 the simulation runs as fast as possible (virtual time);
// otherwise one virtual hour takes 3600/speedup wall seconds.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/chiller"
	"repro/internal/dc"
	"repro/internal/historian"
	"repro/internal/proto"
	"repro/internal/relstore"
	"repro/internal/shard"
	"repro/internal/uplink"
)

// reportUplink is what the simulator needs from its transport: the plain
// uplink or the shard-ring router, interchangeably.
type reportUplink interface {
	proto.Sink
	Counters() uplink.Counters
	Pending() int
	Close() error
}

func main() { os.Exit(run()) }

func run() int {
	pdmeAddr := flag.String("pdme", "127.0.0.1:7011", "PDME report server address")
	id := flag.String("id", "dc-1", "data concentrator id")
	machine := flag.String("machine", "chiller/1", "sensed object id")
	faultFlag := flag.String("fault", "", "seeded faults, e.g. \"motor imbalance=0.7,oil whirl=0.4\"")
	degradeFlag := flag.String("degrade", "", "degradation profile, e.g. \"motor bearing outer race defect:onset=24,growth=120\" (hours)")
	hours := flag.Float64("hours", 24, "virtual hours to simulate")
	speedup := flag.Float64("speedup", 0, "virtual-to-wall speedup (0: as fast as possible)")
	dbPath := flag.String("db", "", "DC database path (empty: in-memory)")
	histDir := flag.String("historian-dir", "", "acquisition historian directory (empty: in-memory); readable later with examples/historian-replay")
	seed := flag.Int64("seed", 1, "plant randomness seed")
	spoolDir := flag.String("spool-dir", "", "store-and-forward spool directory; reports queued while the PDME is unreachable survive a dcsim restart (empty: in-memory spool)")
	spoolCap := flag.Int("spool-cap", 0, "max spooled reports before oldest-first drop (0: default)")
	dialTimeout := flag.Duration("dial-timeout", 0, "per-dial deadline (0: default)")
	sendTimeout := flag.Duration("send-timeout", 0, "per-send deadline (0: default)")
	flushTimeout := flag.Duration("flush-timeout", time.Minute, "final spool drain deadline at exit")
	heartbeat := flag.Duration("heartbeat", 5*time.Minute, "fleet-health heartbeat interval in virtual time (0 disables)")
	shardsFlag := flag.String("shards", "", "shard ring membership \"id=addr,id=addr,...\": reports route to the consistent-hash shard for -id with automatic failover to the ring successor (overrides -pdme; requires -spool-dir)")
	flag.Parse()

	plantCfg := chiller.DefaultConfig()
	plantCfg.Seed = *seed
	plant, err := chiller.New(plantCfg)
	if err != nil {
		fatal(err)
	}
	if err := applyFaults(plant, *faultFlag); err != nil {
		fatal(err)
	}
	var deg *chiller.Degrader
	if *degradeFlag != "" {
		deg, err = parseDegradation(plant, *degradeFlag)
		if err != nil {
			fatal(err)
		}
	}
	var db *relstore.DB
	if *dbPath == "" {
		db = relstore.NewMemory()
	} else {
		db, err = relstore.Open(*dbPath)
		if err != nil {
			fatal(err)
		}
	}
	defer db.Close()
	// The uplink dials lazily and spools while the PDME is unreachable, so
	// dcsim starts (and keeps monitoring) even when pdmed is down. With
	// -shards the transport is instead a ring router: same spool contract,
	// plus failover to the ring successor when the assigned shard stalls.
	var up reportUplink
	var flush func(time.Duration) error
	var router *shard.Router
	if *shardsFlag != "" {
		if *spoolDir == "" {
			fatal(errors.New("-shards requires -spool-dir (failover keeps the spool across target swaps)"))
		}
		members, err := parseShards(*shardsFlag)
		if err != nil {
			fatal(err)
		}
		// A lone DC rings over its own id only: assignment degenerates to
		// the pure rendezvous preference, which every process computes
		// identically — so a fleet of independent dcsims agrees on the
		// routing without sharing a population census.
		ring, err := shard.NewRing(members, []string{*id})
		if err != nil {
			fatal(err)
		}
		router, err = shard.NewRouter(shard.RouterConfig{
			DCID:        *id,
			Ring:        ring,
			SpoolDir:    *spoolDir,
			SpoolCap:    *spoolCap,
			DialTimeout: *dialTimeout,
			SendTimeout: *sendTimeout,
			// Cap retry backoff near the 1 s Pump slice: the stall counter
			// advances only on slices that saw an attempt, so the uplink
			// default (15 s max) can starve the failure detector past the
			// flush deadline on a short run against a dead shard.
			BackoffMax: 2 * time.Second,
			Seed:       *seed,
		})
		if err != nil {
			fatal(err)
		}
		up = router
		// Pump the failure detector between one-second drain slices so an
		// outage mid-flush resolves by failover instead of timing out.
		flush = func(t time.Duration) error {
			attempts := int(t/time.Second) + 1
			return router.Flush(attempts, time.Second)
		}
		fmt.Printf("dcsim %s: shard ring v%d (%d shards), assigned to %s\n",
			*id, ring.Version(), len(members), router.Target())
	} else {
		u, err := uplink.New(uplink.Config{
			Addr:        *pdmeAddr,
			DCID:        *id,
			SpoolDir:    *spoolDir,
			SpoolCap:    *spoolCap,
			DialTimeout: *dialTimeout,
			SendTimeout: *sendTimeout,
			Seed:        *seed,
		})
		if err != nil {
			fatal(err)
		}
		up = u
		flush = u.Flush
	}
	defer up.Close()

	hist, err := historian.Open(historian.Options{Dir: *histDir})
	if err != nil {
		fatal(err)
	}
	defer hist.Close()
	dcCfg := dc.DefaultConfig(*id, *machine)
	dcCfg.Historian = hist
	dcCfg.HeartbeatInterval = *heartbeat
	conc, err := dc.New(dcCfg, plant, db, up)
	if err != nil {
		fatal(err)
	}
	if deg != nil {
		if err := conc.Scheduler().Schedule(&dc.Task{
			Name: "degrade", Interval: time.Hour,
			Run: func(time.Time) error { return deg.Advance(1) },
		}, 0); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("dcsim %s: monitoring %s, reporting to %s, %g virtual hours\n",
		*id, *machine, *pdmeAddr, *hours)

	// On SIGINT/SIGTERM the loop stops at the next hour boundary and falls
	// through to the normal exit path: the spool flush below drains queued
	// reports (bounded by -flush-timeout), so an interrupted run leaves
	// nothing behind that the spool file can't carry into the next one.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	interrupted := false

	stepHours := 1.0
	for done := 0.0; done < *hours; done += stepHours {
		select {
		case sig := <-stop:
			fmt.Printf("dcsim %s: %v — stopping at t+%.1fh, draining spool\n", *id, sig, done)
			interrupted = true
		default:
		}
		if interrupted {
			break
		}
		step := stepHours
		if remaining := *hours - done; remaining < step {
			step = remaining
		}
		if err := conc.RunFor(time.Duration(step * float64(time.Hour))); err != nil {
			fatal(err)
		}
		if router != nil && router.Pump() {
			fmt.Printf("  dcsim %s: shard stalled — failed over to %s\n", *id, router.Target())
		}
		if *speedup > 0 {
			//lint:allow noclock real-time pacing knob of the simulator CLI; virtual time drives the model
			time.Sleep(time.Duration(step * float64(time.Hour) / *speedup))
		}
		c := up.Counters()
		fmt.Printf("  t+%5.1fh  uplink sent=%d acked=%d retried=%d spooled=%d replayed=%d dropped=%d (capacity=%d) dup=%d hb=%d/%d pending=%d active faults=%v\n",
			done+step, c.Sent, c.Acked, c.Retried, c.Spooled, c.Replayed,
			c.Dropped, c.CapacityDrops, c.DedupAcks, c.HeartbeatsSent,
			c.HeartbeatsDropped, up.Pending(), faultSummary(plant))
	}
	code := 0
	if err := flush(*flushTimeout); err != nil {
		// A timed-out drain is an operational failure worth a non-zero exit:
		// the operator's pipeline should notice reports left behind.
		fmt.Fprintf(os.Stderr, "dcsim: %v — %d reports still spooled (they persist for the next run)\n",
			err, up.Pending())
		code = 1
	}
	c := up.Counters()
	fmt.Printf("dcsim %s: done — sent=%d acked=%d retried=%d spooled=%d replayed=%d dropped=%d (capacity=%d) dup=%d hb=%d/%d\n",
		*id, c.Sent, c.Acked, c.Retried, c.Spooled, c.Replayed, c.Dropped,
		c.CapacityDrops, c.DedupAcks, c.HeartbeatsSent, c.HeartbeatsDropped)
	if router != nil {
		printRouting(*id, router)
	}
	return code
}

// printRouting summarizes the shard router's decisions: where this DC's
// reports actually landed, shard by shard.
func printRouting(id string, router *shard.Router) {
	st := router.Stats()
	ids := make([]string, 0, len(st.PerShard))
	for sid := range st.PerShard {
		ids = append(ids, sid)
	}
	sort.Strings(ids)
	line := fmt.Sprintf("dcsim %s: routing — target=%s failovers=%d ring-updates=%d acked-by",
		id, router.Target(), st.Failovers, st.RingUpdates)
	for _, sid := range ids {
		line += fmt.Sprintf(" %s=%d", sid, st.PerShard[sid])
	}
	fmt.Println(line)
}

// parseShards parses "id=addr,id=addr,..." into ring membership.
func parseShards(spec string) ([]shard.Member, error) {
	var members []shard.Member
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 || kv[0] == "" || kv[1] == "" {
			return nil, fmt.Errorf("bad shard member %q (want id=addr)", part)
		}
		members = append(members, shard.Member{ID: kv[0], Addr: kv[1]})
	}
	if len(members) == 0 {
		return nil, errors.New("empty -shards spec")
	}
	return members, nil
}

func applyFaults(plant *chiller.Plant, spec string) error {
	if spec == "" {
		return nil
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return fmt.Errorf("bad fault spec %q (want name=severity)", part)
		}
		f, err := chiller.ParseFault(strings.TrimSpace(kv[0]))
		if err != nil {
			return err
		}
		sev, err := strconv.ParseFloat(strings.TrimSpace(kv[1]), 64)
		if err != nil {
			return fmt.Errorf("bad severity in %q: %w", part, err)
		}
		if err := plant.SetFault(f, sev); err != nil {
			return err
		}
	}
	return nil
}

func parseDegradation(plant *chiller.Plant, spec string) (*chiller.Degrader, error) {
	var profiles []chiller.DegradationProfile
	for _, part := range strings.Split(spec, ";") {
		fields := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(fields) != 2 {
			return nil, fmt.Errorf("bad degradation spec %q (want fault:onset=H,growth=H)", part)
		}
		f, err := chiller.ParseFault(strings.TrimSpace(fields[0]))
		if err != nil {
			return nil, err
		}
		p := chiller.DegradationProfile{Fault: f, Shape: chiller.Exponential}
		for _, kv := range strings.Split(fields[1], ",") {
			pair := strings.SplitN(strings.TrimSpace(kv), "=", 2)
			if len(pair) != 2 {
				return nil, fmt.Errorf("bad degradation parameter %q", kv)
			}
			v, err := strconv.ParseFloat(pair[1], 64)
			if err != nil {
				return nil, err
			}
			switch pair[0] {
			case "onset":
				p.OnsetHours = v
			case "growth":
				p.GrowthHours = v
			default:
				return nil, fmt.Errorf("unknown degradation parameter %q", pair[0])
			}
		}
		profiles = append(profiles, p)
	}
	return chiller.NewDegrader(plant, profiles)
}

func faultSummary(plant *chiller.Plant) []string {
	var out []string
	for _, f := range plant.ActiveFaults(0.05) {
		out = append(out, fmt.Sprintf("%s=%.2f", f, plant.FaultSeverity(f)))
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dcsim:", err)
	os.Exit(1)
}
