// Command pdmed runs a standalone PDME: it listens for §7 failure
// prediction reports over TCP, fuses them, serves the read-side HTTP API
// (prioritized list, beliefs, trends, streaming watches, fleet health), and
// periodically prints the prioritized maintenance list (and optionally
// persists the ship model).
//
// Usage:
//
//	pdmed -listen 127.0.0.1:7011 -serve-addr 127.0.0.1:7080 \
//	      -db /var/lib/mpros/ship.db -historian-dir /var/lib/mpros/hist \
//	      -status 10s
//
// Point one or more dcsim instances (or any §7-speaking client) at the
// listen address; dashboards read from the serve address:
//
//	GET /ranked                                  prioritized maintenance list
//	GET /belief?component=&condition=            one pair's fused state
//	GET /trend?component=&condition=&threshold=  severity history + projection
//	GET /watch?component=                        streaming change notices (NDJSON)
//	GET /health                                  fleet-health snapshot
//	GET /stats                                   view-cache counters
//
// Fleet-of-fleets roles (see DESIGN.md "Hierarchical fleet"):
//
//	pdmed -forward-addr 127.0.0.1:7100 -shard-id shard-1 ...
//	    runs a shard PDME: fuses DC reports as usual AND streams every fused
//	    conclusion upward to an aggregator as a FusedSummary envelope over a
//	    spooled uplink.
//	pdmed -aggregator -listen 127.0.0.1:7100 -serve-addr 127.0.0.1:7180 \
//	      -ring "shard-1=127.0.0.1:7011,shard-2=127.0.0.1:7012"
//	    runs the global aggregator: -listen accepts FusedSummary envelopes
//	    from shard PDMEs; -serve-addr serves /ranked /belief /coverage with
//	    per-shard coverage metadata and graceful degradation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/health"
	"repro/internal/historian"
	"repro/internal/oosm"
	"repro/internal/pdme"
	"repro/internal/proto"
	"repro/internal/relstore"
	"repro/internal/serving"
	"repro/internal/shard"

	mpros "repro"
)

// shutdownGrace bounds how long in-flight HTTP responses (including open
// /watch streams) may delay exit after a signal.
const shutdownGrace = 5 * time.Second

func main() {
	os.Exit(run())
}

func run() int {
	listen := flag.String("listen", "127.0.0.1:7011", "TCP listen address for DC reports")
	serveAddr := flag.String("serve-addr", "", "HTTP address for the read-side API (/ranked /belief /trend /watch /health /stats; empty disables)")
	dbPath := flag.String("db", "", "ship model database path (empty: in-memory)")
	histDir := flag.String("historian-dir", "", "severity/lifetime historian directory (empty: in-memory)")
	statusEvery := flag.Duration("status", 15*time.Second, "prioritized-list print interval (0 disables)")
	idleTimeout := flag.Duration("idle-timeout", 0, "per-connection read/write deadline (0: protocol default); dead peers are cut loose after this")
	healthLate := flag.Duration("health-late", 5*time.Minute, "a DC with no heartbeat or report for this long is late")
	healthSilent := flag.Duration("health-silent", 15*time.Minute, "a DC with no heartbeat or report for this long is silent")
	healthFresh := flag.Duration("health-fresh", time.Hour, "evidence younger than this fuses at full reliability")
	healthHorizon := flag.Duration("health-horizon", 24*time.Hour, "evidence reliability reaches its floor at this age")
	healthFloor := flag.Float64("health-floor", 0, "minimum evidence reliability under staleness discounting [0,1)")
	healthWallclock := flag.Bool("health-wallclock", false, "judge staleness by the wall clock instead of the event-time watermark (use when DCs report in real time; simulated DCs carry virtual timestamps)")
	healthAddr := flag.String("health-addr", "", "deprecated alias for -serve-addr (the /health endpoint lives there now)")
	cacheTolerance := flag.Duration("cache-tolerance", time.Second, "with -health-wallclock, how stale a cached view may be before it is recomputed")
	journalDir := flag.String("journal-dir", "", "write-ahead journal + checkpoint directory; accepted envelopes are fsynced before fusion and a killed pdmed recovers its state on restart (empty disables durability)")
	checkpointInterval := flag.Duration("checkpoint-interval", time.Minute, "periodic checkpoint cadence with -journal-dir (0 disables the timer; count-based checkpoints still run every 1024 records)")
	dedupWindow := flag.Int("dedup-window", 0, "per-DC duplicate-suppression window in sequences (0: protocol default, 4096); size above the deepest spool replay a DC outage can produce")
	aggregator := flag.Bool("aggregator", false, "run as the global fleet aggregator: -listen accepts FusedSummary envelopes from shard PDMEs, -serve-addr serves /ranked /belief /coverage")
	ringSpec := flag.String("ring", "", "shard ring membership as \"id=addr,id=addr,...\" (aggregator mode: coverage accounting over the full membership, not just shards seen so far)")
	forwardAddr := flag.String("forward-addr", "", "aggregator summary-server address; set to run as a shard PDME that streams fused conclusions upward")
	shardID := flag.String("shard-id", "shard-1", "this shard's identity on the aggregator wire (with -forward-addr)")
	forwardSpool := flag.String("forward-spool", "", "summary forwarder spool directory; summaries queued during an aggregator outage survive a restart (empty: in-memory)")
	flag.Parse()
	if *serveAddr == "" {
		*serveAddr = *healthAddr
	}
	// Default to the event-time watermark: simulated DCs (dcsim) stamp
	// reports with virtual time, which a wall clock would judge decades
	// stale. Real-time deployments opt into the wall clock. The same choice
	// governs shard-liveness judgement in aggregator mode.
	healthCfg := health.Config{
		LateAfter:        *healthLate,
		SilentAfter:      *healthSilent,
		FreshFor:         *healthFresh,
		StalenessHorizon: *healthHorizon,
		ReliabilityFloor: *healthFloor,
	}
	if *healthWallclock {
		//lint:allow noclock operator opted into wall-clock staleness via -health-wallclock
		healthCfg.Clock = time.Now
	}
	if *aggregator {
		if *forwardAddr != "" {
			return fail(errors.New("-aggregator and -forward-addr are mutually exclusive (an aggregator is the top of the hierarchy)"))
		}
		return runAggregator(*listen, *serveAddr, *ringSpec, healthCfg, *dedupWindow, *statusEvery)
	}

	var db *relstore.DB
	var err error
	if *dbPath == "" {
		db = relstore.NewMemory()
	} else {
		db, err = relstore.Open(*dbPath)
		if err != nil {
			return fail(err)
		}
	}
	defer db.Close()
	hist, err := historian.Open(historian.Options{Dir: *histDir})
	if err != nil {
		return fail(err)
	}
	defer hist.Close()
	model, err := oosm.NewModel(db)
	if err != nil {
		return fail(err)
	}
	engine, err := pdme.NewWithHistorian(model, mpros.ChillerGroups(), hist)
	if err != nil {
		return fail(err)
	}
	defer engine.Close()
	if err := engine.ConfigureHealth(healthCfg); err != nil {
		return fail(err)
	}
	if *dedupWindow > 0 {
		engine.ConfigureDedup(*dedupWindow)
	}
	// Recover before the views or the report server open: replay must not
	// race live traffic, and a view cache must never materialize pre-crash
	// state.
	if *journalDir != "" {
		stats, err := engine.OpenJournal(pdme.JournalOptions{Dir: *journalDir})
		if err != nil {
			return fail(err)
		}
		printRecovery(*journalDir, stats)
	}

	// Shard role: attach the upward summary stream before the report server
	// opens, so no conclusion write can slip between server start and the
	// subscription; Resync then covers everything recovery rebuilt.
	var fwd *shard.Forwarder
	if *forwardAddr != "" {
		fwd, err = shard.Forward(engine, shard.ForwarderConfig{
			ShardID:        *shardID,
			AggregatorAddr: *forwardAddr,
			SpoolDir:       *forwardSpool,
		})
		if err != nil {
			return fail(err)
		}
		defer fwd.Close()
		resynced := fwd.Resync()
		fmt.Printf("pdmed: role=shard id=%s forwarding to %s (spool=%s, boot epoch %d, resynced %d conclusions)\n",
			*shardID, *forwardAddr, orMemory(*forwardSpool), fwd.Boot(), resynced)
	}

	// serverDied carries the first fatal listener error: a read-side API
	// that silently stopped serving must take the daemon down non-zero
	// instead of leaving a fuser nobody can query.
	serverDied := make(chan error, 1)
	var views *serving.Views
	var httpSrv *http.Server
	if *serveAddr != "" {
		views, err = serving.Open(engine, serving.Options{WallClockTolerance: *cacheTolerance})
		if err != nil {
			return fail(err)
		}
		defer views.Close()
		ln, err := net.Listen("tcp", *serveAddr)
		if err != nil {
			return fail(err)
		}
		httpSrv = serving.Server(views)
		go func() {
			if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				serverDied <- fmt.Errorf("read-side API server: %w", err)
			}
		}()
		fmt.Printf("pdmed: read-side API on http://%s (/ranked /belief /trend /watch /health /stats)\n", ln.Addr())
	}

	idle := proto.DefaultIdleTimeout
	if *idleTimeout > 0 {
		idle = *idleTimeout
	}
	addr, server, err := engine.ServeWithIdleTimeout(*listen, idle)
	if err != nil {
		return fail(err)
	}
	defer server.Close()
	fmt.Printf("pdmed: listening on %s (db=%s, historian=%s)\n",
		addr, orMemory(*dbPath), orMemory(*histDir))

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	var ticker *time.Ticker
	var tick <-chan time.Time
	if *statusEvery > 0 {
		//lint:allow noclock periodic operator status line; daemon cadence is inherently wall-clock
		ticker = time.NewTicker(*statusEvery)
		tick = ticker.C
		defer ticker.Stop()
	}
	var ckptTick <-chan time.Time
	if *journalDir != "" && *checkpointInterval > 0 {
		//lint:allow noclock checkpoint cadence is an operational wall-clock interval
		ckptTicker := time.NewTicker(*checkpointInterval)
		ckptTick = ckptTicker.C
		defer ckptTicker.Stop()
	}
	for {
		select {
		case <-stop:
			fmt.Println("\npdmed: shutting down")
			shutdownHTTP(httpSrv)
			// engine.Close (deferred) writes the final checkpoint; nothing
			// extra needed here — the WAL already holds every accepted
			// envelope.
			return 0
		case err := <-serverDied:
			fmt.Fprintln(os.Stderr, "pdmed:", err)
			return 1
		case <-ckptTick:
			if err := engine.Checkpoint(); err != nil {
				fmt.Fprintln(os.Stderr, "pdmed: checkpoint:", err)
			}
		case <-tick:
			printStatus(engine)
			if fwd != nil {
				// Heartbeat at the health registry's own notion of now: the
				// event-time watermark by default (virtual-time fleets), the
				// wall clock with -health-wallclock — so shard liveness at the
				// aggregator is judged on the same axis the evidence uses.
				if at := engine.Health().Now(); !at.IsZero() {
					if err := fwd.Heartbeat(at); err != nil {
						fmt.Fprintln(os.Stderr, "pdmed: forwarder heartbeat:", err)
					}
				}
				printForwarder(fwd)
			}
		}
	}
}

// runAggregator is the -aggregator main loop: a summary server for shard
// uplinks plus the global read-side endpoints. No model, no journal — the
// aggregator's state is a pure function of what the shards stream up, and
// shard spools + Resync rebuild it after a restart.
func runAggregator(listen, serveAddr, ringSpec string, healthCfg health.Config, dedupWindow int, statusEvery time.Duration) int {
	var ring *shard.Ring
	if ringSpec != "" {
		members, err := parseRing(ringSpec)
		if err != nil {
			return fail(err)
		}
		ring, err = shard.NewRing(members, nil)
		if err != nil {
			return fail(err)
		}
	}
	agg, err := shard.NewAggregator(shard.AggregatorConfig{
		Ring:        ring,
		Health:      healthCfg,
		DedupWindow: dedupWindow,
	})
	if err != nil {
		return fail(err)
	}
	bound, srv, err := agg.Serve(listen)
	if err != nil {
		return fail(err)
	}
	defer srv.Close()
	line := fmt.Sprintf("pdmed: role=aggregator listening on %s for shard summaries", bound)
	if ring != nil {
		line += fmt.Sprintf(" (ring v%d, %d shards)", ring.Version(), len(ring.Members()))
	}
	fmt.Println(line)

	serverDied := make(chan error, 1)
	var httpSrv *http.Server
	if serveAddr != "" {
		ln, err := net.Listen("tcp", serveAddr)
		if err != nil {
			return fail(err)
		}
		httpSrv = &http.Server{Handler: serving.AggregatorHandler(agg)}
		go func() {
			if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				serverDied <- fmt.Errorf("aggregator API server: %w", err)
			}
		}()
		fmt.Printf("pdmed: global read-side API on http://%s (/ranked /belief /coverage)\n", ln.Addr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	var tick <-chan time.Time
	if statusEvery > 0 {
		//lint:allow noclock periodic operator status line; daemon cadence is inherently wall-clock
		ticker := time.NewTicker(statusEvery)
		tick = ticker.C
		defer ticker.Stop()
	}
	for {
		select {
		case <-stop:
			fmt.Println("\npdmed: shutting down")
			shutdownHTTP(httpSrv)
			return 0
		case err := <-serverDied:
			fmt.Fprintln(os.Stderr, "pdmed:", err)
			return 1
		case <-tick:
			printAggregatorStatus(agg)
		}
	}
}

// parseRing parses "id=addr,id=addr,..." into ring membership.
func parseRing(spec string) ([]shard.Member, error) {
	var members []shard.Member
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 || kv[0] == "" || kv[1] == "" {
			return nil, fmt.Errorf("bad ring member %q (want id=addr)", part)
		}
		members = append(members, shard.Member{ID: kv[0], Addr: kv[1]})
	}
	if len(members) == 0 {
		return nil, errors.New("empty -ring spec")
	}
	return members, nil
}

// printRecovery summarizes what the journal restored on boot.
func printRecovery(dir string, stats pdme.RecoveryStats) {
	line := fmt.Sprintf("pdmed: journal %s: ", dir)
	if stats.CheckpointLoaded {
		line += fmt.Sprintf("checkpoint@%d loaded", stats.CheckpointSeq)
	} else {
		line += "no checkpoint"
	}
	line += fmt.Sprintf(", replayed %d reports + %d heartbeats",
		stats.ReportsReplayed, stats.HeartbeatsReplayed)
	if stats.SkippedRecords > 0 {
		line += fmt.Sprintf(", %d records skipped", stats.SkippedRecords)
	}
	if stats.TornBytes > 0 {
		line += fmt.Sprintf(", %d torn bytes truncated", stats.TornBytes)
	}
	fmt.Println(line)
}

// shutdownHTTP drains the read-side server: stop accepting, give in-flight
// responses shutdownGrace to finish, then cut whatever is left (open /watch
// streams never finish on their own).
func shutdownHTTP(srv *http.Server) {
	if srv == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		_ = srv.Close()
	}
}

func printStatus(engine *pdme.PDME) {
	items := engine.PrioritizedList()
	fmt.Printf("--- %s | %d reports received | %d duplicates suppressed | %d open conclusions ---\n",
		//lint:allow noclock status-line timestamp for the operator, not fed into fusion
		time.Now().Format(time.RFC3339), engine.ReceivedReports(), engine.DedupHits(), len(items))
	for i, it := range items {
		if i >= 10 {
			fmt.Printf("  ... %d more\n", len(items)-10)
			break
		}
		line := fmt.Sprintf("  %-28s %-38s Bel=%.3f Pl=%.3f reports=%d",
			it.Component, it.Condition, it.Belief, it.Plausibility, it.Reports)
		if it.HasPrognostic {
			line += fmt.Sprintf("  t(P=0.5)=%.1fd", it.TimeToHalf.Hours()/24)
		}
		if it.Degraded {
			line += fmt.Sprintf("  DEGRADED(rel=%.2f)", it.Reliability)
		}
		fmt.Println(line)
	}
	printHealth(engine)
}

// printForwarder is the shard role's status line: conversion counters from
// the forwarder plus transport counters from its uplink.
func printForwarder(f *shard.Forwarder) {
	fc := f.Counters()
	c := f.Uplink()
	fmt.Printf("  forwarder: forwarded=%d skipped=%d errors=%d | sent=%d acked=%d dup=%d retried=%d pending=%d\n",
		fc.Forwarded, fc.Skipped, fc.Errors, c.Sent, c.Acked, c.DedupAcks, c.Retried, f.Pending())
}

// printAggregatorStatus is the -aggregator status block: global top-10 with
// shard provenance, then per-shard coverage.
func printAggregatorStatus(agg *shard.Aggregator) {
	cov := agg.Coverage()
	items := agg.GlobalRanked()
	fmt.Printf("--- %s | shards %d/%d live | %d pairs held | %d accepted | %d stale dropped | %d duplicates suppressed ---\n",
		//lint:allow noclock status-line timestamp for the operator, not fed into fusion
		time.Now().Format(time.RFC3339), cov.ShardsLive, cov.ShardsTotal,
		cov.HeldPairs, agg.Accepted(), agg.StaleDropped(), agg.DedupHits())
	for i, it := range items {
		if i >= 10 {
			fmt.Printf("  ... %d more\n", len(items)-10)
			break
		}
		line := fmt.Sprintf("  %-28s %-38s Bel=%.3f Pl=%.3f reports=%d via %s",
			it.Component, it.Condition, it.Belief, it.Plausibility, it.Reports, it.Shard)
		if it.HasPrognostic {
			line += fmt.Sprintf("  t(P=0.5)=%.1fd", it.TimeToHalf.Hours()/24)
		}
		if it.Degraded {
			line += fmt.Sprintf("  DEGRADED(rel=%.2f, shard %s)", it.Reliability, it.ShardState)
		}
		fmt.Println(line)
	}
	fmt.Println("  shard coverage:")
	for _, sc := range cov.Shards {
		line := fmt.Sprintf("    %-10s %-8s components=%d reliability=%.2f", sc.ID, sc.State, sc.Components, sc.Reliability)
		if !sc.InRing {
			line += " (not in ring: draining)"
		}
		fmt.Println(line)
	}
}

func printHealth(engine *pdme.PDME) {
	snap := engine.Health().Snapshot()
	if len(snap) == 0 {
		return
	}
	now := engine.Health().Now()
	fmt.Println("  fleet health:")
	for _, h := range snap {
		line := fmt.Sprintf("    %-10s %-8s", h.DCID, h.State)
		if h.LastSeen.IsZero() {
			line += " last-seen=never"
		} else {
			line += fmt.Sprintf(" last-seen=%s ago", now.Sub(h.LastSeen).Round(time.Second))
		}
		line += fmt.Sprintf(" spool=%d reliability=%.2f", h.SpoolDepth, h.Reliability)
		if h.RecentRestarts > 0 {
			line += fmt.Sprintf(" restarts=%d", h.RecentRestarts)
		}
		fmt.Println(line)
	}
}

func orMemory(path string) string {
	if path == "" {
		return "memory"
	}
	return path
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "pdmed:", err)
	return 1
}
