// Command pdmed runs a standalone PDME: it listens for §7 failure
// prediction reports over TCP, fuses them, and periodically prints the
// prioritized maintenance list (and optionally persists the ship model).
//
// Usage:
//
//	pdmed -listen 127.0.0.1:7011 -db /var/lib/mpros/ship.db \
//	      -historian-dir /var/lib/mpros/hist -status 10s
//
// Point one or more dcsim instances (or any §7-speaking client) at the
// listen address.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/historian"
	"repro/internal/oosm"
	"repro/internal/pdme"
	"repro/internal/proto"
	"repro/internal/relstore"

	mpros "repro"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7011", "TCP listen address for DC reports")
	dbPath := flag.String("db", "", "ship model database path (empty: in-memory)")
	histDir := flag.String("historian-dir", "", "severity/lifetime historian directory (empty: in-memory)")
	statusEvery := flag.Duration("status", 15*time.Second, "prioritized-list print interval (0 disables)")
	idleTimeout := flag.Duration("idle-timeout", 0, "per-connection read/write deadline (0: protocol default); dead peers are cut loose after this")
	flag.Parse()

	var db *relstore.DB
	var err error
	if *dbPath == "" {
		db = relstore.NewMemory()
	} else {
		db, err = relstore.Open(*dbPath)
		if err != nil {
			fatal(err)
		}
	}
	defer db.Close()
	hist, err := historian.Open(historian.Options{Dir: *histDir})
	if err != nil {
		fatal(err)
	}
	defer hist.Close()
	model, err := oosm.NewModel(db)
	if err != nil {
		fatal(err)
	}
	engine, err := pdme.NewWithHistorian(model, mpros.ChillerGroups(), hist)
	if err != nil {
		fatal(err)
	}
	defer engine.Close()
	idle := proto.DefaultIdleTimeout
	if *idleTimeout > 0 {
		idle = *idleTimeout
	}
	addr, server, err := engine.ServeWithIdleTimeout(*listen, idle)
	if err != nil {
		fatal(err)
	}
	defer server.Close()
	fmt.Printf("pdmed: listening on %s (db=%s, historian=%s)\n",
		addr, orMemory(*dbPath), orMemory(*histDir))

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	var ticker *time.Ticker
	var tick <-chan time.Time
	if *statusEvery > 0 {
		ticker = time.NewTicker(*statusEvery)
		tick = ticker.C
		defer ticker.Stop()
	}
	for {
		select {
		case <-stop:
			fmt.Println("\npdmed: shutting down")
			return
		case <-tick:
			printStatus(engine)
		}
	}
}

func printStatus(engine *pdme.PDME) {
	items := engine.PrioritizedList()
	fmt.Printf("--- %s | %d reports received | %d duplicates suppressed | %d open conclusions ---\n",
		time.Now().Format(time.RFC3339), engine.ReceivedReports(), engine.DedupHits(), len(items))
	for i, it := range items {
		if i >= 10 {
			fmt.Printf("  ... %d more\n", len(items)-10)
			break
		}
		line := fmt.Sprintf("  %-28s %-38s Bel=%.3f Pl=%.3f reports=%d",
			it.Component, it.Condition, it.Belief, it.Plausibility, it.Reports)
		if it.HasPrognostic {
			line += fmt.Sprintf("  t(P=0.5)=%.1fd", it.TimeToHalf.Hours()/24)
		}
		fmt.Println(line)
	}
}

func orMemory(path string) string {
	if path == "" {
		return "memory"
	}
	return path
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdmed:", err)
	os.Exit(1)
}
