// Command pdmed runs a standalone PDME: it listens for §7 failure
// prediction reports over TCP, fuses them, serves the read-side HTTP API
// (prioritized list, beliefs, trends, streaming watches, fleet health), and
// periodically prints the prioritized maintenance list (and optionally
// persists the ship model).
//
// Usage:
//
//	pdmed -listen 127.0.0.1:7011 -serve-addr 127.0.0.1:7080 \
//	      -db /var/lib/mpros/ship.db -historian-dir /var/lib/mpros/hist \
//	      -status 10s
//
// Point one or more dcsim instances (or any §7-speaking client) at the
// listen address; dashboards read from the serve address:
//
//	GET /ranked                                  prioritized maintenance list
//	GET /belief?component=&condition=            one pair's fused state
//	GET /trend?component=&condition=&threshold=  severity history + projection
//	GET /watch?component=                        streaming change notices (NDJSON)
//	GET /health                                  fleet-health snapshot
//	GET /stats                                   view-cache counters
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/health"
	"repro/internal/historian"
	"repro/internal/oosm"
	"repro/internal/pdme"
	"repro/internal/proto"
	"repro/internal/relstore"
	"repro/internal/serving"

	mpros "repro"
)

// shutdownGrace bounds how long in-flight HTTP responses (including open
// /watch streams) may delay exit after a signal.
const shutdownGrace = 5 * time.Second

func main() {
	os.Exit(run())
}

func run() int {
	listen := flag.String("listen", "127.0.0.1:7011", "TCP listen address for DC reports")
	serveAddr := flag.String("serve-addr", "", "HTTP address for the read-side API (/ranked /belief /trend /watch /health /stats; empty disables)")
	dbPath := flag.String("db", "", "ship model database path (empty: in-memory)")
	histDir := flag.String("historian-dir", "", "severity/lifetime historian directory (empty: in-memory)")
	statusEvery := flag.Duration("status", 15*time.Second, "prioritized-list print interval (0 disables)")
	idleTimeout := flag.Duration("idle-timeout", 0, "per-connection read/write deadline (0: protocol default); dead peers are cut loose after this")
	healthLate := flag.Duration("health-late", 5*time.Minute, "a DC with no heartbeat or report for this long is late")
	healthSilent := flag.Duration("health-silent", 15*time.Minute, "a DC with no heartbeat or report for this long is silent")
	healthFresh := flag.Duration("health-fresh", time.Hour, "evidence younger than this fuses at full reliability")
	healthHorizon := flag.Duration("health-horizon", 24*time.Hour, "evidence reliability reaches its floor at this age")
	healthFloor := flag.Float64("health-floor", 0, "minimum evidence reliability under staleness discounting [0,1)")
	healthWallclock := flag.Bool("health-wallclock", false, "judge staleness by the wall clock instead of the event-time watermark (use when DCs report in real time; simulated DCs carry virtual timestamps)")
	healthAddr := flag.String("health-addr", "", "deprecated alias for -serve-addr (the /health endpoint lives there now)")
	cacheTolerance := flag.Duration("cache-tolerance", time.Second, "with -health-wallclock, how stale a cached view may be before it is recomputed")
	journalDir := flag.String("journal-dir", "", "write-ahead journal + checkpoint directory; accepted envelopes are fsynced before fusion and a killed pdmed recovers its state on restart (empty disables durability)")
	checkpointInterval := flag.Duration("checkpoint-interval", time.Minute, "periodic checkpoint cadence with -journal-dir (0 disables the timer; count-based checkpoints still run every 1024 records)")
	dedupWindow := flag.Int("dedup-window", 0, "per-DC duplicate-suppression window in sequences (0: protocol default, 4096); size above the deepest spool replay a DC outage can produce")
	flag.Parse()
	if *serveAddr == "" {
		*serveAddr = *healthAddr
	}

	var db *relstore.DB
	var err error
	if *dbPath == "" {
		db = relstore.NewMemory()
	} else {
		db, err = relstore.Open(*dbPath)
		if err != nil {
			return fail(err)
		}
	}
	defer db.Close()
	hist, err := historian.Open(historian.Options{Dir: *histDir})
	if err != nil {
		return fail(err)
	}
	defer hist.Close()
	model, err := oosm.NewModel(db)
	if err != nil {
		return fail(err)
	}
	engine, err := pdme.NewWithHistorian(model, mpros.ChillerGroups(), hist)
	if err != nil {
		return fail(err)
	}
	defer engine.Close()
	// Default to the event-time watermark: simulated DCs (dcsim) stamp
	// reports with virtual time, which a wall clock would judge decades
	// stale. Real-time deployments opt into the wall clock.
	healthCfg := health.Config{
		LateAfter:        *healthLate,
		SilentAfter:      *healthSilent,
		FreshFor:         *healthFresh,
		StalenessHorizon: *healthHorizon,
		ReliabilityFloor: *healthFloor,
	}
	if *healthWallclock {
		//lint:allow noclock operator opted into wall-clock staleness via -health-wallclock
		healthCfg.Clock = time.Now
	}
	if err := engine.ConfigureHealth(healthCfg); err != nil {
		return fail(err)
	}
	if *dedupWindow > 0 {
		engine.ConfigureDedup(*dedupWindow)
	}
	// Recover before the views or the report server open: replay must not
	// race live traffic, and a view cache must never materialize pre-crash
	// state.
	if *journalDir != "" {
		stats, err := engine.OpenJournal(pdme.JournalOptions{Dir: *journalDir})
		if err != nil {
			return fail(err)
		}
		printRecovery(*journalDir, stats)
	}

	// serverDied carries the first fatal listener error: a read-side API
	// that silently stopped serving must take the daemon down non-zero
	// instead of leaving a fuser nobody can query.
	serverDied := make(chan error, 1)
	var views *serving.Views
	var httpSrv *http.Server
	if *serveAddr != "" {
		views, err = serving.Open(engine, serving.Options{WallClockTolerance: *cacheTolerance})
		if err != nil {
			return fail(err)
		}
		defer views.Close()
		ln, err := net.Listen("tcp", *serveAddr)
		if err != nil {
			return fail(err)
		}
		httpSrv = serving.Server(views)
		go func() {
			if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				serverDied <- fmt.Errorf("read-side API server: %w", err)
			}
		}()
		fmt.Printf("pdmed: read-side API on http://%s (/ranked /belief /trend /watch /health /stats)\n", ln.Addr())
	}

	idle := proto.DefaultIdleTimeout
	if *idleTimeout > 0 {
		idle = *idleTimeout
	}
	addr, server, err := engine.ServeWithIdleTimeout(*listen, idle)
	if err != nil {
		return fail(err)
	}
	defer server.Close()
	fmt.Printf("pdmed: listening on %s (db=%s, historian=%s)\n",
		addr, orMemory(*dbPath), orMemory(*histDir))

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	var ticker *time.Ticker
	var tick <-chan time.Time
	if *statusEvery > 0 {
		//lint:allow noclock periodic operator status line; daemon cadence is inherently wall-clock
		ticker = time.NewTicker(*statusEvery)
		tick = ticker.C
		defer ticker.Stop()
	}
	var ckptTick <-chan time.Time
	if *journalDir != "" && *checkpointInterval > 0 {
		//lint:allow noclock checkpoint cadence is an operational wall-clock interval
		ckptTicker := time.NewTicker(*checkpointInterval)
		ckptTick = ckptTicker.C
		defer ckptTicker.Stop()
	}
	for {
		select {
		case <-stop:
			fmt.Println("\npdmed: shutting down")
			shutdownHTTP(httpSrv)
			// engine.Close (deferred) writes the final checkpoint; nothing
			// extra needed here — the WAL already holds every accepted
			// envelope.
			return 0
		case err := <-serverDied:
			fmt.Fprintln(os.Stderr, "pdmed:", err)
			return 1
		case <-ckptTick:
			if err := engine.Checkpoint(); err != nil {
				fmt.Fprintln(os.Stderr, "pdmed: checkpoint:", err)
			}
		case <-tick:
			printStatus(engine)
		}
	}
}

// printRecovery summarizes what the journal restored on boot.
func printRecovery(dir string, stats pdme.RecoveryStats) {
	line := fmt.Sprintf("pdmed: journal %s: ", dir)
	if stats.CheckpointLoaded {
		line += fmt.Sprintf("checkpoint@%d loaded", stats.CheckpointSeq)
	} else {
		line += "no checkpoint"
	}
	line += fmt.Sprintf(", replayed %d reports + %d heartbeats",
		stats.ReportsReplayed, stats.HeartbeatsReplayed)
	if stats.SkippedRecords > 0 {
		line += fmt.Sprintf(", %d records skipped", stats.SkippedRecords)
	}
	if stats.TornBytes > 0 {
		line += fmt.Sprintf(", %d torn bytes truncated", stats.TornBytes)
	}
	fmt.Println(line)
}

// shutdownHTTP drains the read-side server: stop accepting, give in-flight
// responses shutdownGrace to finish, then cut whatever is left (open /watch
// streams never finish on their own).
func shutdownHTTP(srv *http.Server) {
	if srv == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		_ = srv.Close()
	}
}

func printStatus(engine *pdme.PDME) {
	items := engine.PrioritizedList()
	fmt.Printf("--- %s | %d reports received | %d duplicates suppressed | %d open conclusions ---\n",
		//lint:allow noclock status-line timestamp for the operator, not fed into fusion
		time.Now().Format(time.RFC3339), engine.ReceivedReports(), engine.DedupHits(), len(items))
	for i, it := range items {
		if i >= 10 {
			fmt.Printf("  ... %d more\n", len(items)-10)
			break
		}
		line := fmt.Sprintf("  %-28s %-38s Bel=%.3f Pl=%.3f reports=%d",
			it.Component, it.Condition, it.Belief, it.Plausibility, it.Reports)
		if it.HasPrognostic {
			line += fmt.Sprintf("  t(P=0.5)=%.1fd", it.TimeToHalf.Hours()/24)
		}
		if it.Degraded {
			line += fmt.Sprintf("  DEGRADED(rel=%.2f)", it.Reliability)
		}
		fmt.Println(line)
	}
	printHealth(engine)
}

func printHealth(engine *pdme.PDME) {
	snap := engine.Health().Snapshot()
	if len(snap) == 0 {
		return
	}
	now := engine.Health().Now()
	fmt.Println("  fleet health:")
	for _, h := range snap {
		line := fmt.Sprintf("    %-10s %-8s", h.DCID, h.State)
		if h.LastSeen.IsZero() {
			line += " last-seen=never"
		} else {
			line += fmt.Sprintf(" last-seen=%s ago", now.Sub(h.LastSeen).Round(time.Second))
		}
		line += fmt.Sprintf(" spool=%d reliability=%.2f", h.SpoolDepth, h.Reliability)
		if h.RecentRestarts > 0 {
			line += fmt.Sprintf(" restarts=%d", h.RecentRestarts)
		}
		fmt.Println(line)
	}
}

func orMemory(path string) string {
	if path == "" {
		return "memory"
	}
	return path
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "pdmed:", err)
	return 1
}
