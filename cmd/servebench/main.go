// Command servebench load-tests the read-side serving tier: it stands up an
// in-process PDME with live synthetic ingest (reports + heartbeats on
// virtual timestamps), then drives thousands of concurrent readers through
// the materialized-view API while dedicated checkers continuously prove
// cache coherence against fresh fuses.
//
//	servebench -readers 10000 -duration 10s -json
//
// The run reports hit ratio, invalidation rate, and p50/p99/p999 read
// latency. Exit status: 0 on success, 2 on any coherence violation, 3 when
// -min-hit-ratio is not met — so CI can gate on a short run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/bits"
	"math/rand"
	"os"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/oosm"
	"repro/internal/pdme"
	"repro/internal/proto"
	"repro/internal/relstore"
	"repro/internal/serving"

	mpros "repro"
)

// histogram is a lock-free log-bucketed latency histogram: 64 octaves × 16
// sub-buckets, ~6% relative quantile error — plenty for p50/p99/p999 at
// nanosecond-to-second scale without per-sample allocation.
const subBuckets = 16

type histogram struct {
	buckets [64 * subBuckets]atomic.Uint64
	count   atomic.Uint64
}

func (h *histogram) record(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	if ns == 0 {
		ns = 1
	}
	octave := bits.Len64(ns) - 1
	var sub uint64
	if octave > 4 { // below 32ns the octave alone is the resolution
		sub = (ns >> (uint(octave) - 4)) & (subBuckets - 1)
	}
	h.buckets[uint64(octave)*subBuckets+sub].Add(1)
	h.count.Add(1)
}

// quantile returns the upper bound of the bucket holding the q-th sample.
func (h *histogram) quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen > rank {
			octave := i / subBuckets
			sub := uint64(i % subBuckets)
			lo := uint64(1) << uint(octave)
			width := lo / subBuckets
			if width == 0 {
				return time.Duration(lo)
			}
			return time.Duration(lo + (sub+1)*width)
		}
	}
	return 0
}

type results struct {
	Readers  int     `json:"readers"`
	Writers  int     `json:"writers"`
	Checkers int     `json:"checkers"`
	Seconds  float64 `json:"seconds"`

	Reads       uint64  `json:"reads"`
	ReadsPerSec float64 `json:"reads_per_sec"`
	Deliveries  uint64  `json:"deliveries"`
	Heartbeats  uint64  `json:"heartbeats"`

	Hits          uint64  `json:"cache_hits"`
	Misses        uint64  `json:"cache_misses"`
	Bypasses      uint64  `json:"cache_bypasses"`
	Coalesced     uint64  `json:"cache_coalesced"`
	HitRatio      float64 `json:"hit_ratio"`
	Invalidations uint64  `json:"invalidations"`
	Stores        uint64  `json:"stores"`

	Notices     uint64 `json:"watch_notices"`
	NoticeDrops uint64 `json:"watch_notice_drops"`

	CoherenceChecks     uint64 `json:"coherence_checks"`
	CoherenceViolations uint64 `json:"coherence_violations"`

	P50Micros  float64 `json:"read_p50_us"`
	P99Micros  float64 `json:"read_p99_us"`
	P999Micros float64 `json:"read_p999_us"`
}

func main() {
	os.Exit(run())
}

func run() int {
	readers := flag.Int("readers", 10000, "concurrent reader goroutines")
	writers := flag.Int("writers", 4, "concurrent ingest goroutines (synthetic DCs)")
	checkers := flag.Int("checkers", 4, "coherence-checker goroutines")
	checkEvery := flag.Duration("check-every", 10*time.Millisecond, "pause between coherence checks per checker (each check runs a full fresh fuse; unpaced checkers become the load)")
	watchers := flag.Int("watchers", 32, "streaming watch subscriptions held open during the run")
	duration := flag.Duration("duration", 10*time.Second, "load duration")
	ingestEvery := flag.Duration("ingest-every", 25*time.Millisecond, "delay between deliveries per writer")
	think := flag.Duration("think", 200*time.Millisecond, "per-reader pause between requests (0 turns readers into hot loops that measure scheduler pressure, not serving latency)")
	minHitRatio := flag.Float64("min-hit-ratio", 0, "fail (exit 3) when the final hit ratio is below this")
	asJSON := flag.Bool("json", false, "emit the results as one JSON object on stdout")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	model, err := oosm.NewModel(relstore.NewMemory())
	if err != nil {
		return fail(err)
	}
	engine, err := pdme.New(model, mpros.ChillerGroups())
	if err != nil {
		return fail(err)
	}
	defer engine.Close()
	views, err := serving.Open(engine, serving.Options{})
	if err != nil {
		return fail(err)
	}
	defer views.Close()

	groups := mpros.ChillerGroups()
	var conditions []string
	for _, conds := range groups {
		conditions = append(conditions, conds...)
	}
	sort.Strings(conditions) // map order is random; keep seeded runs reproducible
	components := []string{"chiller-1", "chiller-2", "chiller-3", "chiller-4"}

	// Seed one report per component so readers never see an empty model.
	virtual := time.Date(1998, 8, 1, 0, 0, 0, 0, time.UTC)
	seedRNG := rand.New(rand.NewSource(*seed))
	for i, comp := range components {
		if err := engine.Deliver(synthReport(seedRNG, "dc-seed", comp, conditions, virtual.Add(time.Duration(i)*time.Second))); err != nil {
			return fail(err)
		}
	}

	var (
		wg         sync.WaitGroup
		reads      atomic.Uint64
		deliveries atomic.Uint64
		heartbeats atomic.Uint64
		checks     atomic.Uint64
		violations atomic.Uint64
		hist       histogram
		virtualNS  atomic.Int64 // virtual clock shared by writers, ns offset from the epoch
	)
	stop := make(chan struct{})

	// Streaming subscriptions stay open for the whole run so every delivery
	// exercises the fan-out path; they drain lazily, so slow-consumer drops
	// are expected and counted, never blocking.
	for i := 0; i < *watchers; i++ {
		sub := views.Watch("", 8)
		defer sub.Close()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				case _, ok := <-sub.C:
					if !ok {
						return
					}
				}
			}
		}()
	}

	for w := 0; w < *writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)*101))
			dc := fmt.Sprintf("dc-%d", w)
			n := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				at := virtual.Add(time.Duration(virtualNS.Add(int64(time.Second))))
				if n%20 == 19 {
					if err := engine.ObserveHeartbeat(&proto.Heartbeat{DCID: dc, SentAt: at, Incarnation: 1}); err == nil {
						heartbeats.Add(1)
					}
				} else {
					comp := components[rng.Intn(len(components))]
					if err := engine.Deliver(synthReport(rng, dc, comp, conditions, at)); err != nil {
						fmt.Fprintln(os.Stderr, "servebench: deliver:", err)
					} else {
						deliveries.Add(1)
					}
				}
				n++
				//lint:allow noclock load-generator pacing; the benchmark measures real elapsed time
				time.Sleep(*ingestEvery)
			}
		}(w)
	}

	for c := 0; c < *checkers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if *checkEvery > 0 {
					//lint:allow noclock coherence-checker pacing; wall-clock by design in a benchmark
					time.Sleep(*checkEvery)
				}
				// Epoch guard: two hits off the same materialization bracket
				// an interval with no invalidation and no health observation,
				// so a fresh fuse taken between them must match exactly.
				first := views.Ranked()
				if !first.Cached || first.Epoch == 0 {
					continue
				}
				fresh := engine.PrioritizedList()
				second := views.Ranked()
				if !second.Cached || second.Epoch != first.Epoch {
					continue // ingest raced the check: inconclusive
				}
				checks.Add(1)
				if !reflect.DeepEqual(first.Items, fresh) {
					violations.Add(1)
				}
			}
		}()
	}

	for r := 0; r < *readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + 7919*int64(r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				comp := components[rng.Intn(len(components))]
				cond := conditions[rng.Intn(len(conditions))]
				//lint:allow noclock read-latency measurement is the benchmark's whole point
				start := time.Now()
				switch rng.Intn(10) {
				case 0, 1: // per-pair belief view
					_, _ = views.Belief(comp, cond)
				case 2: // trend (uncached historian path)
					_ = views.Trend(comp, cond, 0.75)
				default: // ranked list — the dashboard hot path
					_ = views.Ranked()
				}
				//lint:allow noclock read-latency measurement is the benchmark's whole point
				hist.record(time.Since(start))
				reads.Add(1)
				if *think > 0 {
					//lint:allow noclock reader think-time pacing; wall-clock by design in a benchmark
					time.Sleep(*think)
				}
			}
		}(r)
	}

	//lint:allow noclock benchmark wall-clock window
	started := time.Now()
	//lint:allow noclock benchmark runs for a real-time duration
	time.Sleep(*duration)
	close(stop)
	wg.Wait()
	//lint:allow noclock benchmark wall-clock window
	elapsed := time.Since(started)

	st := views.Stats()
	res := results{
		Readers:  *readers,
		Writers:  *writers,
		Checkers: *checkers,
		Seconds:  elapsed.Seconds(),

		Reads:       reads.Load(),
		ReadsPerSec: float64(reads.Load()) / elapsed.Seconds(),
		Deliveries:  deliveries.Load(),
		Heartbeats:  heartbeats.Load(),

		Hits:          st.Hits,
		Misses:        st.Misses,
		Bypasses:      st.Bypasses,
		Coalesced:     st.Coalesced,
		HitRatio:      st.HitRatio(),
		Invalidations: st.Invalidations,
		Stores:        st.Stores,

		Notices:     st.Notices,
		NoticeDrops: st.NoticeDrops,

		CoherenceChecks:     checks.Load(),
		CoherenceViolations: violations.Load(),

		P50Micros:  float64(hist.quantile(0.50)) / 1e3,
		P99Micros:  float64(hist.quantile(0.99)) / 1e3,
		P999Micros: float64(hist.quantile(0.999)) / 1e3,
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return fail(err)
		}
	} else {
		fmt.Printf("servebench: %d readers, %d writers for %.1fs\n", res.Readers, res.Writers, res.Seconds)
		fmt.Printf("  reads          %d (%.0f/s)\n", res.Reads, res.ReadsPerSec)
		fmt.Printf("  ingest         %d reports, %d heartbeats\n", res.Deliveries, res.Heartbeats)
		fmt.Printf("  cache          hits=%d misses=%d bypasses=%d coalesced=%d (hit ratio %.3f)\n", res.Hits, res.Misses, res.Bypasses, res.Coalesced, res.HitRatio)
		fmt.Printf("  invalidations  %d (%d stores)\n", res.Invalidations, res.Stores)
		fmt.Printf("  watch          %d notices, %d dropped\n", res.Notices, res.NoticeDrops)
		fmt.Printf("  coherence      %d conclusive checks, %d violations\n", res.CoherenceChecks, res.CoherenceViolations)
		fmt.Printf("  read latency   p50=%.1fµs p99=%.1fµs p999=%.1fµs\n", res.P50Micros, res.P99Micros, res.P999Micros)
	}

	if res.CoherenceViolations > 0 {
		fmt.Fprintf(os.Stderr, "servebench: FAIL: %d coherence violations\n", res.CoherenceViolations)
		return 2
	}
	if *minHitRatio > 0 && res.HitRatio < *minHitRatio {
		fmt.Fprintf(os.Stderr, "servebench: FAIL: hit ratio %.3f below required %.3f\n", res.HitRatio, *minHitRatio)
		return 3
	}
	return 0
}

func synthReport(rng *rand.Rand, dc, component string, conditions []string, at time.Time) *proto.Report {
	r := &proto.Report{
		DCID:               dc,
		KnowledgeSourceID:  "ks-" + dc,
		SensedObjectID:     component,
		MachineConditionID: conditions[rng.Intn(len(conditions))],
		Severity:           0.2 + 0.6*rng.Float64(),
		Belief:             0.2 + 0.7*rng.Float64(),
		Timestamp:          at,
	}
	if rng.Intn(3) == 0 {
		r.Prognostics = proto.PrognosticVector{{
			Probability:    0.3 + 0.6*rng.Float64(),
			HorizonSeconds: float64(rng.Intn(400)+24) * 3600,
		}}
	}
	return r
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "servebench:", err)
	return 1
}
