// Command sbfrc is the SBFR toolchain: it assembles the textual state
// machine language into the compact bytecode the §6.3 interpreter executes,
// disassembles compiled systems, and runs a system over CSV sensor input.
//
// Usage:
//
//	sbfrc asm machines.sbfr -channels current,cpos       # compile + sizes
//	sbfrc dis machines.sbfr -channels current,cpos       # round-trip listing
//	sbfrc run machines.sbfr -channels current,cpos < samples.csv
//	sbfrc ema                                            # print the Figure 3 system
//
// CSV input for run: one row per tick, one column per channel; the tool
// prints machine states, locals, and status transitions as they occur.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/sbfr"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	channels := fs.String("channels", "current,cpos", "comma-separated channel names")
	switch cmd {
	case "ema":
		fmt.Print(sbfr.EMASource)
		return
	case "asm", "dis", "run":
		if err := fs.Parse(os.Args[2:]); err != nil {
			fatal(err)
		}
		args := fs.Args()
		if len(args) != 1 {
			usage()
		}
		src, err := os.ReadFile(args[0])
		if err != nil {
			fatal(err)
		}
		chans := splitChannels(*channels)
		switch cmd {
		case "asm":
			doAsm(string(src), chans)
		case "dis":
			doDis(string(src), chans)
		case "run":
			doRun(string(src), chans)
		}
	default:
		usage()
	}
}

func splitChannels(s string) []string {
	var out []string
	for _, c := range strings.Split(s, ",") {
		if c = strings.TrimSpace(c); c != "" {
			out = append(out, c)
		}
	}
	return out
}

func doAsm(src string, channels []string) {
	progs, err := sbfr.AssembleSystem(src, channels)
	if err != nil {
		fatal(err)
	}
	total := 0
	fmt.Printf("%-20s %8s %7s %7s\n", "MACHINE", "BYTES", "STATES", "LOCALS")
	for _, p := range progs {
		fmt.Printf("%-20s %8d %7d %7d\n", p.Name, p.Size(), p.NumStates(), p.NumLocals())
		total += p.Size()
	}
	fmt.Printf("%-20s %8d\n", "TOTAL", total)
}

func doDis(src string, channels []string) {
	progs, err := sbfr.AssembleSystem(src, channels)
	if err != nil {
		fatal(err)
	}
	env := sbfr.Env{Channels: map[string]int{}, Machines: map[string]int{}}
	for i, c := range channels {
		env.Channels[c] = i
	}
	for i, p := range progs {
		env.Machines[p.Name] = i
	}
	for _, p := range progs {
		text, err := sbfr.Disassemble(p, &env)
		if err != nil {
			fatal(err)
		}
		fmt.Println(text)
	}
}

func doRun(src string, channels []string) {
	sys, err := sbfr.NewSystemFromSource(src, channels)
	if err != nil {
		fatal(err)
	}
	names := sys.MachineNames()
	prevStates := make([]string, len(names))
	sc := bufio.NewScanner(os.Stdin)
	tick := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != len(channels) {
			fatal(fmt.Errorf("tick %d: %d values for %d channels", tick, len(fields), len(channels)))
		}
		in := make([]float64, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				fatal(fmt.Errorf("tick %d: %w", tick, err))
			}
			in[i] = v
		}
		if err := sys.Cycle(in); err != nil {
			fatal(err)
		}
		for i, name := range names {
			state, _ := sys.StateOf(name)
			status, _ := sys.Status(name)
			if state != prevStates[i] {
				fmt.Printf("tick %5d  %-14s -> %-16s status=%g\n", tick, name, state, status)
				prevStates[i] = state
			}
		}
		tick++
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	fmt.Printf("ran %d ticks, footprint %d bytes\n", tick, sys.FootprintBytes())
	for _, name := range names {
		state, _ := sys.StateOf(name)
		status, _ := sys.Status(name)
		fmt.Printf("final: %-14s state=%-16s status=%g\n", name, state, status)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sbfrc {asm|dis|run} [-channels a,b] file.sbfr | sbfrc ema")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sbfrc:", err)
	os.Exit(1)
}
