// Command mprosbench regenerates every experiment in the DESIGN.md
// per-experiment index (E1–E13): the paper's worked examples, Figure 3
// behaviour, footprint/cycle bounds, accuracy claims, and the ablations.
//
// Usage:
//
//	mprosbench                # run every experiment
//	mprosbench -exp E1,E4     # run selected experiments
//	mprosbench -seed 7        # change the workload seed
//	mprosbench -list          # list experiment ids and titles
//	mprosbench -json          # emit one JSON object per experiment
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

// jsonResult is the machine-readable form of one experiment, mirroring
// experiments.Result with stable lowercase keys for downstream tooling.
type jsonResult struct {
	ID         string     `json:"id"`
	Title      string     `json:"title"`
	PaperClaim string     `json:"paper_claim,omitempty"`
	Header     []string   `json:"header"`
	Rows       [][]string `json:"rows"`
	Notes      []string   `json:"notes,omitempty"`
	Seed       int64      `json:"seed"`
}

func main() {
	expFlag := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	seed := flag.Int64("seed", 1, "workload seed for randomized experiments")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonOut := flag.Bool("json", false, "emit one JSON object per experiment instead of tables")
	flag.Parse()

	registry := experiments.Registry()
	ids := experiments.IDs()
	if *list {
		for _, id := range ids {
			res, err := registry[id](*seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
				os.Exit(1)
			}
			fmt.Printf("%-4s %s\n", id, res.Title)
		}
		return
	}
	if *expFlag != "" {
		var selected []string
		for _, raw := range strings.Split(*expFlag, ",") {
			id := strings.ToUpper(strings.TrimSpace(raw))
			if _, ok := registry[id]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (have %s)\n", raw, strings.Join(ids, ", "))
				os.Exit(2)
			}
			selected = append(selected, id)
		}
		ids = selected
	}
	failed := false
	enc := json.NewEncoder(os.Stdout)
	for _, id := range ids {
		res, err := registry[id](*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
			failed = true
			continue
		}
		if *jsonOut {
			if err := enc.Encode(jsonResult{
				ID: res.ID, Title: res.Title, PaperClaim: res.PaperClaim,
				Header: res.Header, Rows: res.Rows, Notes: res.Notes, Seed: *seed,
			}); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
				failed = true
			}
			continue
		}
		fmt.Println(res.Render())
	}
	if failed {
		os.Exit(1)
	}
}
