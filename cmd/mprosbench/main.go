// Command mprosbench regenerates every experiment in the DESIGN.md
// per-experiment index (E1–E12): the paper's worked examples, Figure 3
// behaviour, footprint/cycle bounds, accuracy claims, and the ablations.
//
// Usage:
//
//	mprosbench                # run every experiment
//	mprosbench -exp E1,E4     # run selected experiments
//	mprosbench -seed 7        # change the workload seed
//	mprosbench -list          # list experiment ids and titles
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	expFlag := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	seed := flag.Int64("seed", 1, "workload seed for randomized experiments")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	registry := experiments.Registry()
	ids := experiments.IDs()
	if *list {
		for _, id := range ids {
			res, err := registry[id](*seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
				os.Exit(1)
			}
			fmt.Printf("%-4s %s\n", id, res.Title)
		}
		return
	}
	if *expFlag != "" {
		var selected []string
		for _, raw := range strings.Split(*expFlag, ",") {
			id := strings.ToUpper(strings.TrimSpace(raw))
			if _, ok := registry[id]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (have %s)\n", raw, strings.Join(ids, ", "))
				os.Exit(2)
			}
			selected = append(selected, id)
		}
		ids = selected
	}
	failed := false
	for _, id := range ids {
		res, err := registry[id](*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
			failed = true
			continue
		}
		fmt.Println(res.Render())
	}
	if failed {
		os.Exit(1)
	}
}
