// Command mproslint runs the MPROS domain-invariant analyzers (noclock,
// floateq, errwrap, masscheck, maporder, atomicfield, lockdiscipline,
// waldiscipline, snapshotparity) plus the interprocedural call-graph
// analyzers (hotalloc, goroleak, sendblock) and the //lint:allow directive
// police (lintallow) over the repository.
//
// Two modes:
//
//	mproslint ./...                 standalone: loads packages (test units
//	                                included) via `go list -export` and
//	                                prints findings to stdout; exit 1 if any
//
//	go vet -vettool=$(pwd)/bin/mproslint ./...
//	                                vettool: speaks the go vet compilation-
//	                                unit protocol (-V=full, -flags, *.cfg).
//	                                The interprocedural analyzers need the
//	                                whole module at once, so only the
//	                                per-unit analyzers run in this mode.
//
// Suppress an intentional finding with a reasoned directive on (or
// immediately above) the offending line:
//
//	//lint:allow noclock wall-clock benchmark timing, not simulated time
//
// Reasonless, unknown-analyzer, or unused directives are findings
// themselves and cannot be suppressed.
//
// With -json, findings are emitted as a JSON array of
// {file, line, column, analyzer, message, suppressed} objects — suppressed
// findings included, marked — for CI artifacts and editor integration. The
// exit status still reflects only unsuppressed findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicfield"
	"repro/internal/analysis/driver"
	"repro/internal/analysis/errwrap"
	"repro/internal/analysis/floateq"
	"repro/internal/analysis/goroleak"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/lockdiscipline"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/masscheck"
	"repro/internal/analysis/noclock"
	"repro/internal/analysis/sendblock"
	"repro/internal/analysis/snapshotparity"
	"repro/internal/analysis/waldiscipline"
)

var analyzers = []*analysis.Analyzer{
	noclock.Analyzer,
	floateq.Analyzer,
	errwrap.Analyzer,
	masscheck.Analyzer,
	maporder.Analyzer,
	atomicfield.Analyzer,
	lockdiscipline.Analyzer,
	waldiscipline.Analyzer,
	snapshotparity.Analyzer,
	hotalloc.Analyzer,
	goroleak.Analyzer,
	sendblock.Analyzer,
}

// jsonFinding is the machine-readable finding shape for -json output.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Column     int    `json:"column"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func main() {
	// The vettool protocol is positional and must win before flag parsing
	// (go vet invokes `mproslint -V=full`, `-flags`, or `mproslint x.cfg`).
	if code, handled := driver.VetToolMain("mproslint", os.Args[1:], analyzers); handled {
		os.Exit(code)
	}

	printPath := flag.Bool("print-path", false,
		"print the path of this executable (for -vettool wiring) and exit")
	dir := flag.String("C", "", "change to this directory before loading packages")
	asJSON := flag.Bool("json", false,
		"emit findings as JSON (suppressed ones included, marked) instead of text")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mproslint [-C dir] [-json] packages...\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", analysis.AllowName,
			"lint:allow directives must name a known analyzer, carry a reason, and suppress something")
	}
	flag.Parse()

	if *printPath {
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintln(os.Stderr, "mproslint:", err)
			os.Exit(1)
		}
		fmt.Println(exe)
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := driver.LoadAndRunOpts(*dir, patterns, analyzers,
		driver.Options{IncludeSuppressed: *asJSON})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mproslint:", err)
		os.Exit(2)
	}

	failing := 0
	for _, f := range findings {
		if !f.Suppressed {
			failing++
		}
	}

	if *asJSON {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File:       f.Pos.Filename,
				Line:       f.Pos.Line,
				Column:     f.Pos.Column,
				Analyzer:   f.Analyzer,
				Message:    f.Message,
				Suppressed: f.Suppressed,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "mproslint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}

	if failing > 0 {
		fmt.Fprintf(os.Stderr, "mproslint: %d finding(s)\n", failing)
		os.Exit(1)
	}
}
