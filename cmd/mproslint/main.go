// Command mproslint runs the MPROS domain-invariant analyzers (noclock,
// floateq, errwrap, masscheck, maporder, atomicfield, lockdiscipline,
// waldiscipline, snapshotparity) plus the //lint:allow directive police
// (lintallow) over the repository.
//
// Two modes:
//
//	mproslint ./...                 standalone: loads packages (test units
//	                                included) via `go list -export` and
//	                                prints findings to stdout; exit 1 if any
//
//	go vet -vettool=$(pwd)/bin/mproslint ./...
//	                                vettool: speaks the go vet compilation-
//	                                unit protocol (-V=full, -flags, *.cfg)
//
// Suppress an intentional finding with a reasoned directive on (or
// immediately above) the offending line:
//
//	//lint:allow noclock wall-clock benchmark timing, not simulated time
//
// Reasonless, unknown-analyzer, or unused directives are findings
// themselves and cannot be suppressed.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicfield"
	"repro/internal/analysis/driver"
	"repro/internal/analysis/errwrap"
	"repro/internal/analysis/floateq"
	"repro/internal/analysis/lockdiscipline"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/masscheck"
	"repro/internal/analysis/noclock"
	"repro/internal/analysis/snapshotparity"
	"repro/internal/analysis/waldiscipline"
)

var analyzers = []*analysis.Analyzer{
	noclock.Analyzer,
	floateq.Analyzer,
	errwrap.Analyzer,
	masscheck.Analyzer,
	maporder.Analyzer,
	atomicfield.Analyzer,
	lockdiscipline.Analyzer,
	waldiscipline.Analyzer,
	snapshotparity.Analyzer,
}

func main() {
	// The vettool protocol is positional and must win before flag parsing
	// (go vet invokes `mproslint -V=full`, `-flags`, or `mproslint x.cfg`).
	if code, handled := driver.VetToolMain("mproslint", os.Args[1:], analyzers); handled {
		os.Exit(code)
	}

	printPath := flag.Bool("print-path", false,
		"print the path of this executable (for -vettool wiring) and exit")
	dir := flag.String("C", "", "change to this directory before loading packages")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mproslint [-C dir] packages...\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", analysis.AllowName,
			"lint:allow directives must name a known analyzer, carry a reason, and suppress something")
	}
	flag.Parse()

	if *printPath {
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintln(os.Stderr, "mproslint:", err)
			os.Exit(1)
		}
		fmt.Println(exe)
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := driver.LoadAndRun(*dir, patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mproslint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "mproslint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
