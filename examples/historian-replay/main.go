// Historian replay: record a week of monitoring into a disk-backed
// historian, then re-open the archive cold and drive the stored process
// history back through the DC's fuzzy analyzer — the §4.6 promise that
// archived data stays *analyzable*, not just stored. The offline pass must
// rediscover the same fault the live DC called, and the archived vibration
// features must fit the same rising trend the PDME projected.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"repro/internal/chiller"
	"repro/internal/dc"
	"repro/internal/fuzzy"
	"repro/internal/historian"
	"repro/internal/trend"

	mpros "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "mpros-historian-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// ---- Phase 1: live monitoring, recording into the archive ----------
	station, err := mpros.NewStation(mpros.StationConfig{
		Seed:         11,
		HistorianDir: dir,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := station.InjectFault(chiller.RefrigerantLowCharge, 0.6); err != nil {
		log.Fatal(err)
	}
	const week = 7 * 24 * time.Hour
	if err := station.Advance(week); err != nil {
		log.Fatal(err)
	}
	liveReports := station.DC.ReportsSent()
	fmt.Printf("recorded: one week of monitoring, %d live reports, archive at %s\n",
		liveReports, dir)
	if err := station.Close(); err != nil {
		log.Fatal(err)
	}

	// ---- Phase 2: cold replay from the archive -------------------------
	store, err := historian.Open(historian.Options{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	fmt.Printf("reopened: %d channels recovered\n", len(store.Channels()))

	// Reassemble the process scans: every proc/* channel was appended at
	// the same scan instants, so the stored series zip back into full
	// ProcessState snapshots.
	series := make(map[string][]historian.Sample)
	for _, f := range dc.ProcFields {
		it, err := store.Query(dc.ProcChannel(f), time.Time{}, time.Time{})
		if err != nil {
			log.Fatal(err)
		}
		series[f] = it.Collect()
	}
	scans := len(series[dc.ProcFields[0]])
	for _, f := range dc.ProcFields {
		if len(series[f]) != scans {
			log.Fatalf("ragged archive: %s has %d scans, want %d", f, len(series[f]), scans)
		}
	}

	// Drive the snapshots through a fresh fuzzy analyzer, offline.
	fz, err := fuzzy.NewChillerDiagnostics()
	if err != nil {
		log.Fatal(err)
	}
	calls := map[string]int{}
	for i := 0; i < scans; i++ {
		vals := make(map[string]float64, len(dc.ProcFields))
		for _, f := range dc.ProcFields {
			vals[f] = series[f][i].Value
		}
		ps, err := dc.ProcessStateFromScalars(vals)
		if err != nil {
			log.Fatal(err)
		}
		results, err := fz.Diagnose(ps, 0.15)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range results {
			calls[r.Condition]++
		}
	}
	fmt.Printf("replayed: %d archived process scans through the fuzzy analyzer\n", scans)
	conds := make([]string, 0, len(calls))
	for c := range calls {
		conds = append(conds, c)
	}
	sort.Strings(conds)
	for _, c := range conds {
		fmt.Printf("  %-38s called in %d/%d scans\n", c, calls[c], scans)
	}
	if calls[chiller.RefrigerantLowCharge.String()] == 0 {
		log.Fatal("replay failed to rediscover the injected refrigerant low charge")
	}

	// Trend over the archived vibration features: fit the daily RMS
	// rollup means of each point — month-scale trending without touching
	// raw samples, the downsampling tiers doing their job.
	bestPt, bestSlope := "", 0.0
	for _, pt := range chiller.AllPoints() {
		// Tier configs are not persisted; EnsureChannel rebuilds the daily
		// rollups over the recovered samples.
		if err := store.EnsureChannel(historian.ChannelConfig{
			Name:  dc.VibChannel(pt, "rms"),
			Tiers: []time.Duration{24 * time.Hour},
		}); err != nil {
			log.Fatal(err)
		}
		rolls, err := store.QueryRollup(dc.VibChannel(pt, "rms"), 24*time.Hour,
			time.Time{}, time.Time{})
		if err != nil || len(rolls) < 3 {
			continue
		}
		pts := make([]trend.Point, len(rolls))
		for i, r := range rolls {
			pts[i] = trend.Point{At: r.Start.Add(r.Dur / 2), Value: r.Mean()}
		}
		fit, err := trend.TheilSen(pts)
		if err != nil {
			continue
		}
		if bestPt == "" || fit.Slope > bestSlope {
			bestPt, bestSlope = pt.String(), fit.Slope
		}
	}
	fmt.Printf("trend: steepest daily-rollup RMS slope at %s (%+.3g per day)\n",
		bestPt, bestSlope*86400)
	fmt.Println("ok: archive replay reproduces the live diagnosis")
}
