// Four sources: the complete §1.1 Data Concentrator with all four
// knowledge sources live — the DLI-style vibration rulebook, the fuzzy
// process diagnostics, the SBFR process monitor, and the wavelet neural
// network — feeding one PDME. A compound failure (a bearing defect plus a
// refrigerant leak) exercises both the reinforcement path (several sources
// agreeing on a condition raise its fused belief beyond any single source's
// believability) and the independence of logical failure groups.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/chiller"
	"repro/internal/wnn"

	mpros "repro"
)

func main() {
	station, err := mpros.NewStation(mpros.StationConfig{
		Seed:       21,
		EnableSBFR: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer station.Close()

	// Train the WNN classifier (the fourth source). Smaller frames keep
	// training quick for the example; match the DC by rebuilding it with
	// the classifier's frame length in a real deployment, or train at the
	// DC's 16384 — here we train at the DC default.
	fmt.Println("training wavelet neural network classifiers...")
	clf, err := wnn.NewChillerClassifier(station.Plant.Config(), 16384, 10, 5)
	if err != nil {
		log.Fatal(err)
	}
	if err := station.DC.AttachWNN(clf); err != nil {
		log.Fatal(err)
	}

	// Compound failure: mechanical + refrigeration cycle.
	if err := station.InjectFault(chiller.MotorBearingOuter, 0.75); err != nil {
		log.Fatal(err)
	}
	if err := station.InjectFault(chiller.RefrigerantLowCharge, 0.8); err != nil {
		log.Fatal(err)
	}

	if err := station.Advance(24 * time.Hour); err != nil {
		log.Fatal(err)
	}

	// Which sources spoke?
	reports, err := station.DC.StoredReports("")
	if err != nil {
		log.Fatal(err)
	}
	bySource := map[string]int{}
	for _, r := range reports {
		bySource[r["source"].(string)]++
	}
	fmt.Println("\nreports per knowledge source over one day:")
	for _, ks := range []string{"ks/dli", "ks/fuzzy", "ks/sbfr", "ks/wnn"} {
		fmt.Printf("  %-9s %d\n", ks, bySource[ks])
	}

	// Fused state: both faults believed, independently, each reinforced by
	// multiple sources.
	fmt.Println("\nfused conclusions:")
	for _, item := range station.PrioritizedList() {
		fmt.Printf("  %-38s group=%-20s Bel=%.3f (%d reports)\n",
			item.Condition, item.Group, item.Belief, item.Reports)
	}
	view, err := station.Browser()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n" + view)
}
