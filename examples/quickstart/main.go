// Quickstart: assemble a single-chiller MPROS station, inject a fault, run
// two days of virtual monitoring, and read the fused conclusions.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/chiller"

	mpros "repro"
)

func main() {
	// A station is a simulated chiller + Data Concentrator + PDME wired
	// together in-process.
	station, err := mpros.NewStation(mpros.StationConfig{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	defer station.Close()

	// Day one: healthy machine.
	if err := station.Advance(24 * time.Hour); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after a healthy day: %d open conclusions\n", len(station.PrioritizedList()))

	// A bearing defect appears.
	if err := station.InjectFault(chiller.MotorBearingOuter, 0.65); err != nil {
		log.Fatal(err)
	}
	if err := station.Advance(24 * time.Hour); err != nil {
		log.Fatal(err)
	}

	belief, err := station.Belief(chiller.MotorBearingOuter)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fused belief in %q: %.3f\n", chiller.MotorBearingOuter, belief)

	// The prioritized maintenance list (§3.1).
	for _, item := range station.PrioritizedList() {
		fmt.Printf("maintenance: %-38s Bel=%.3f", item.Condition, item.Belief)
		if item.HasPrognostic {
			fmt.Printf("  50%% failure within %.1f days", item.TimeToHalf.Hours()/24)
		}
		fmt.Println()
	}

	// The Figure 2-style browser view.
	view, err := station.Browser()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n" + view)
}
