// Fleet: the paper's distributed deployment — several Data Concentrators
// near the machinery, each instrumenting its own chiller, reporting over a
// TCP "ship's network" to one centrally located PDME (§1.1). Every chiller
// carries a different failure mode; the PDME fuses each machine's evidence
// independently and ranks the fleet-wide maintenance list.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/chiller"

	mpros "repro"
)

func main() {
	fleet, err := mpros.NewFleet(mpros.FleetConfig{DCCount: 4, SeedBase: 11})
	if err != nil {
		log.Fatal(err)
	}
	defer fleet.Close()
	fmt.Printf("PDME listening on %s; %d data concentrators connected\n\n",
		fleet.Addr, len(fleet.Stations))

	// Different troubles on different machines; chiller 4 stays healthy.
	faults := map[int]struct {
		fault    chiller.Fault
		severity float64
	}{
		0: {chiller.MotorImbalance, 0.85},
		1: {chiller.GearToothWear, 0.7},
		2: {chiller.RefrigerantLowCharge, 0.8},
	}
	for i, f := range faults {
		if err := fleet.Stations[i].Plant.SetFault(f.fault, f.severity); err != nil {
			log.Fatal(err)
		}
	}

	if err := fleet.Advance(24 * time.Hour); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PDME received %d reports over TCP\n\n", fleet.PDME.ReceivedReports())

	fmt.Println("fleet-wide prioritized maintenance list:")
	for _, item := range fleet.PDME.PrioritizedList() {
		fmt.Printf("  %-12s %-38s Bel=%.3f (from %d reports)\n",
			item.Component, item.Condition, item.Belief, item.Reports)
	}

	// Per-machine detail for the worst machine.
	fmt.Println()
	view, err := fleet.PDME.RenderBrowser(fleet.Stations[0].Machine.String())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(view)
}
