// Prognostics: the §5.4 conservative fusion of (time, probability) vectors
// — including both worked examples from the paper — and the §10.1
// next-generation refinement, where a Weibull fit over historical failure
// data conditions the forecast on the unit's age.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/fusion"
	"repro/internal/hazard"
	"repro/internal/proto"
)

const month = 30 * 86400.0 // seconds

func main() {
	paperExamples()
	hazardRefinement()
}

func paperExamples() {
	base := proto.PrognosticVector{
		{Probability: 0.01, HorizonSeconds: 3 * month},
		{Probability: 0.5, HorizonSeconds: 4 * month},
		{Probability: 0.99, HorizonSeconds: 5 * month},
	}
	weak := proto.PrognosticVector{{Probability: 0.12, HorizonSeconds: 4.5 * month}}
	strong := proto.PrognosticVector{{Probability: 0.95, HorizonSeconds: 4.5 * month}}

	fusedWeak, err := fusion.FuseConservative(base, weak)
	if err != nil {
		log.Fatal(err)
	}
	fusedStrong, err := fusion.FuseConservative(base, strong)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("§5.4 worked examples — failure probability by month:")
	fmt.Println("months  base   +weak(.12@4.5)  +strong(.95@4.5)")
	for m := 3.0; m <= 5.01; m += 0.25 {
		d := time.Duration(m * month * float64(time.Second))
		fmt.Printf("%5.2f  %5.3f  %14.3f  %16.3f\n",
			m, base.ProbabilityAt(d), fusedWeak.ProbabilityAt(d), fusedStrong.ProbabilityAt(d))
	}
	maxH := time.Duration(8 * month * float64(time.Second))
	tb, _ := base.TimeToProbability(0.99, maxH)
	ts, _ := fusedStrong.TimeToProbability(0.99, maxH)
	fmt.Printf("time to 99%%: base %.2f months; dominated %.2f months (earlier demise)\n\n",
		tb.Hours()/24/30, ts.Hours()/24/30)
}

func hazardRefinement() {
	// Historical failure archive: a fleet of identical bearings.
	rng := rand.New(rand.NewSource(3))
	truth := hazard.Weibull{Shape: 2.5, Scale: 4000}
	history := make([]hazard.Observation, 300)
	for i := range history {
		life := truth.Quantile(rng.Float64())
		if life > 6000 {
			history[i] = hazard.Observation{Time: 6000, Censored: true}
		} else {
			history[i] = hazard.Observation{Time: life}
		}
	}
	fit, err := hazard.FitWeibull(history)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("§10.1 refinement — fitted life distribution: Weibull(k=%.2f, λ=%.0f h)\n",
		fit.Shape, fit.Scale)
	km, err := hazard.KaplanMeier(history)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Kaplan-Meier survival checkpoints:")
	for _, h := range []float64{1000, 2000, 4000} {
		fmt.Printf("  S(%5.0f h) = %.3f (Weibull fit: %.3f)\n",
			h, hazard.SurvivalAt(km, h), 1-fit.CDF(h))
	}

	fmt.Println("age-conditioned forecasts, P(fail within horizon | alive at age):")
	horizons := []float64{500, 1000, 2000}
	fmt.Printf("%10s  %12s  %12s  %12s\n", "age (h)", "h=500", "h=1000", "h=2000")
	for _, age := range []float64{0, 2000, 3500} {
		v, err := hazard.RefinePrognostic(fit, age, horizons)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10.0f  %12.3f  %12.3f  %12.3f\n",
			age, v[0].Probability, v[1].Probability, v[2].Probability)
	}
	fmt.Println("an aged wear-out unit fails sooner — exactly what the grade-based")
	fmt.Println("worst-case envelope of phase 1 cannot express.")
}
