// EMA stiction: the paper's Figure 3 worked example, end to end. Two SBFR
// state machines — a current-spike recognizer and a stiction counter — run
// over a simulated electro-mechanical actuator. Commanded moves (whose
// current spikes follow CPOS changes) are ignored; uncommanded spikes are
// counted; more than four flags an imminent seize-up, which "higher level
// software (e.g., the PDME)" acknowledges by resetting the status register.
package main

import (
	"fmt"
	"log"

	"repro/internal/ema"
	"repro/internal/sbfr"
)

func main() {
	sys, err := sbfr.NewEMASystem()
	if err != nil {
		log.Fatal(err)
	}
	progs, err := sbfr.AssembleSystem(sbfr.EMASource, sbfr.EMAChannels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 3 machines (compiled sizes; paper reports 229 B and 93 B):")
	for _, p := range progs {
		fmt.Printf("  %-10s %3d bytes, %d states\n", p.Name, p.Size(), p.NumStates())
	}

	// Scenario: routine commanded moves, then the mechanism starts sticking.
	events := ema.MergeEvents(
		ema.HealthyScenario(10, 4, 60),   // commanded moves, ticks 10..190
		ema.StictionScenario(260, 6, 25), // six uncommanded spikes from tick 260
	)
	sim, err := ema.NewSimulator(ema.DefaultConfig(), events)
	if err != nil {
		log.Fatal(err)
	}

	lastSpikeState := ""
	for tick := 0; tick < 450; tick++ {
		s := sim.Step()
		if err := sys.Cycle([]float64{s.Current, s.CPOS}); err != nil {
			log.Fatal(err)
		}
		if st, _ := sys.StateOf("Spike"); st != lastSpikeState && st == "Spike" {
			count, _ := sys.LocalOf("Stiction", 0)
			fmt.Printf("tick %4d: current spike recognized (uncommanded count=%g)\n", tick, count)
		}
		lastSpikeState, _ = sys.StateOf("Spike")

		if status, _ := sys.Status("Stiction"); status != 0 {
			fmt.Printf("tick %4d: STICTION FLAGGED — seize-up imminent; PDME acknowledges\n", tick)
			// The acknowledging agent "has the responsibility to then reset
			// [the] status register to 0".
			if err := sys.SetStatus("Stiction", 0); err != nil {
				log.Fatal(err)
			}
		}
	}
	count, _ := sys.LocalOf("Stiction", 0)
	state, _ := sys.StateOf("Stiction")
	fmt.Printf("final: stiction machine state=%s count=%g footprint=%d bytes\n",
		state, count, sys.FootprintBytes())
}
