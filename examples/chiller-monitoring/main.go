// Chiller monitoring: the full condition-based-maintenance story on one
// machine. A bearing degrades along an exponential wear profile over three
// weeks of virtual operation; the Data Concentrator's scheduled vibration
// tests pick the fault up, severity grades escalate through the §6.1
// categories, and the PDME's fused prognosis tightens as evidence
// accumulates.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/chiller"
	"repro/internal/dc"

	mpros "repro"
)

func main() {
	station, err := mpros.NewStation(mpros.StationConfig{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	defer station.Close()

	// Wear-out profile: onset after 2 days, full severity ~18 days later.
	degrader, err := chiller.NewDegrader(station.Plant, []chiller.DegradationProfile{{
		Fault:       chiller.MotorBearingOuter,
		OnsetHours:  48,
		GrowthHours: 430,
		Shape:       chiller.Exponential,
	}})
	if err != nil {
		log.Fatal(err)
	}
	// Advance wear hourly on the DC's own scheduler, like a real plant
	// accumulating operating hours between tests.
	if err := station.DC.Scheduler().Schedule(&dc.Task{
		Name:     "wear",
		Interval: time.Hour,
		Run:      func(time.Time) error { return degrader.Advance(1) },
	}, 0); err != nil {
		log.Fatal(err)
	}

	fmt.Println("day  severity  fused-belief  grade-of-last-report  t(P=0.5)")
	for day := 1; day <= 21; day++ {
		if err := station.Advance(24 * time.Hour); err != nil {
			log.Fatal(err)
		}
		belief, err := station.Belief(chiller.MotorBearingOuter)
		if err != nil {
			log.Fatal(err)
		}
		grade := "-"
		tHalf := "-"
		if rows, err := station.DC.StoredReports(chiller.MotorBearingOuter.String()); err == nil && len(rows) > 0 {
			last := rows[len(rows)-1]
			grade = mpros.SeverityGrade(gradeOf(last["severity"].(float64))).String()
		}
		if v := station.FusedPrognostic(chiller.MotorBearingOuter); len(v) > 0 {
			if d, ok := v.TimeToProbability(0.5, 365*24*time.Hour); ok {
				tHalf = fmt.Sprintf("%.1fd", d.Hours()/24)
			}
		}
		fmt.Printf("%3d  %8.2f  %12.3f  %-20s  %s\n",
			day, station.Plant.FaultSeverity(chiller.MotorBearingOuter), belief, grade, tHalf)
	}

	fmt.Println()
	view, err := station.Browser()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(view)
}

// gradeOf mirrors proto.GradeSeverity without importing internals here.
func gradeOf(severity float64) mpros.SeverityGrade {
	switch {
	case severity <= 0:
		return mpros.SeverityNone
	case severity < 0.25:
		return mpros.SeveritySlight
	case severity < 0.5:
		return mpros.SeverityModerate
	case severity < 0.75:
		return mpros.SeveritySerious
	default:
		return mpros.SeverityExtreme
	}
}
