// Package mpros is the public API of the MPROS reproduction: the Machinery
// Prognostic and Diagnostic System of "Condition-Based Maintenance:
// Algorithms and Applications for Embedded High Performance Computing"
// (Bennett & Hadden, IPPS/SPDP Workshops 1999).
//
// The package assembles the internal subsystems — the chiller plant
// simulator, the Data Concentrator with its analyzer suite (DLI-style
// vibration rulebook, fuzzy process diagnostics, SBFR), the report
// protocol, and the PDME with its Object-Oriented Ship Model and
// Dempster-Shafer / conservative-envelope knowledge fusion — into ready-to-
// run deployments. Examples under examples/ and the mprosbench experiment
// harness drive everything through this facade.
package mpros

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/chiller"
	"repro/internal/dc"
	"repro/internal/fusion"
	"repro/internal/health"
	"repro/internal/historian"
	"repro/internal/oosm"
	"repro/internal/pdme"
	"repro/internal/proto"
	"repro/internal/relstore"
	"repro/internal/serving"
	"repro/internal/uplink"
)

// Re-exported core types, so facade users need no internal imports.
type (
	// Report is the §7.2 failure prediction report.
	Report = proto.Report
	// PrognosticVector is the §7.3 (probability, time) list.
	PrognosticVector = proto.PrognosticVector
	// PrognosticPoint is one prognostic pair.
	PrognosticPoint = proto.PrognosticPoint
	// SeverityGrade is the Slight/Moderate/Serious/Extreme scale.
	SeverityGrade = proto.SeverityGrade
	// Fault enumerates the twelve FMEA failure modes of the chiller model.
	Fault = chiller.Fault
	// MaintenanceItem is one row of the PDME's prioritized list.
	MaintenanceItem = pdme.MaintenanceItem
	// Groups maps logical failure groups to condition names.
	Groups = fusion.Groups
	// HealthConfig parametrizes the PDME's fleet-health registry
	// (liveness thresholds, staleness-discounting curve).
	HealthConfig = health.Config
	// DCHealth is one DC's health snapshot.
	DCHealth = health.DCHealth
	// HealthState is a DC's liveness classification.
	HealthState = health.State
	// Source is the plant interface a DC instruments; FleetConfig.WrapSource
	// interposes on it for sensor-fault injection.
	Source = dc.Source
	// Views is the read-side serving tier: event-invalidated materialized
	// views over the PDME, streaming subscriptions, and the HTTP API
	// (see serving.Open / serving.Server).
	Views = serving.Views
	// ServingOptions configures a Views tier.
	ServingOptions = serving.Options
	// RankedView is a cached prioritized-list read.
	RankedView = serving.RankedView
	// BeliefView is a cached per-condition fused state.
	BeliefView = serving.BeliefView
	// TrendView is a snapshot-isolated severity history with threshold
	// projection.
	TrendView = serving.TrendView
	// ServingStats are the view cache's coherence counters.
	ServingStats = serving.Stats
	// Notice is one change notification on a watch subscription.
	Notice = serving.Notice
	// Subscription is a bounded-buffer change feed from Views.Watch.
	Subscription = serving.Subscription
)

// Health state constants.
const (
	HealthUnknown  = health.StateUnknown
	HealthAlive    = health.StateAlive
	HealthLate     = health.StateLate
	HealthSilent   = health.StateSilent
	HealthFlapping = health.StateFlapping
)

// Severity grade constants.
const (
	SeverityNone     = proto.SeverityNone
	SeveritySlight   = proto.SeveritySlight
	SeverityModerate = proto.SeverityModerate
	SeveritySerious  = proto.SeveritySerious
	SeverityExtreme  = proto.SeverityExtreme
)

// ChillerGroups returns the logical failure groups (§5.3) for the
// centrifugal chiller's twelve FMEA failure modes.
func ChillerGroups() Groups {
	g := Groups{}
	for name, faults := range chiller.FaultGroups() {
		for _, f := range faults {
			g[name] = append(g[name], f.String())
		}
	}
	return g
}

// StationConfig configures a single-chiller monitoring station: one
// simulated plant, one Data Concentrator, one PDME, connected in-process.
type StationConfig struct {
	// Seed drives the plant's reproducible randomness.
	Seed int64
	// DBPath persists the DC database and ship model; empty runs in memory.
	DBPath string
	// VibrationInterval and ProcessInterval override the DC test schedule
	// (zero keeps the defaults: 4h vibration, 30m process).
	VibrationInterval time.Duration
	ProcessInterval   time.Duration
	// Start is the initial virtual time (zero: 1998-08-01, when the paper's
	// PDME first ran).
	Start time.Time
	// EnableSBFR activates the DC's SBFR process monitor as a third
	// knowledge source (§5.8). The fourth source, the WNN classifier, is
	// attached separately via Station.DC.AttachWNN because its training is
	// expensive (see wnn.NewChillerClassifier).
	EnableSBFR bool
	// HistorianDir persists the station's time-series historian on disk;
	// empty runs it in memory. The DC and PDME share one store: DC
	// acquisitions and PDME severity histories land in the same archive,
	// and replay tools (examples/historian-replay) read it back.
	HistorianDir string
	// Heartbeat schedules the DC's liveness heartbeat at this interval
	// (0: no heartbeats). In-process stations deliver heartbeats straight
	// into the PDME's health registry.
	Heartbeat time.Duration
	// Health, when set, enables staleness-discounted fusion on the PDME
	// (see HealthConfig); nil keeps classic undiscounted fusion while the
	// registry still tracks liveness.
	Health *HealthConfig
	// JournalDir persists the PDME's write-ahead journal + checkpoints on
	// disk; empty runs without durability. With it set, a killed station
	// process recovers its fusion state (evidence, dedup window, health
	// history) bit-for-bit on the next NewStation over the same directory.
	JournalDir string
	// JournalCheckpointEvery overrides the automatic checkpoint cadence in
	// accepted records (0: pdme.DefaultCheckpointEvery).
	JournalCheckpointEvery int
	// DedupWindow overrides the PDME's per-DC duplicate-suppression window
	// capacity (0: proto.DefaultDedupWindow, 4096 sequences).
	DedupWindow int
}

// Station is a complete single-machine MPROS deployment.
type Station struct {
	// Plant is the simulated chiller.
	Plant *chiller.Plant
	// DC is the data concentrator instrumenting it.
	DC *dc.DC
	// PDME is the monitoring engine fusing the DC's reports.
	PDME *pdme.PDME
	// Machine is the OOSM id of the monitored chiller.
	Machine oosm.ObjectID
	// Historian is the shared time-series store (DC acquisitions + PDME
	// severity/lifetime archives).
	Historian *historian.Store
	// Recovery summarizes what the PDME's journal restored at build time
	// (zero value when JournalDir is unset).
	Recovery pdme.RecoveryStats

	db *relstore.DB
}

// NewStation assembles a station.
func NewStation(cfg StationConfig) (*Station, error) {
	plantCfg := chiller.DefaultConfig()
	plantCfg.Seed = cfg.Seed
	plant, err := chiller.New(plantCfg)
	if err != nil {
		return nil, err
	}
	var db *relstore.DB
	if cfg.DBPath == "" {
		db = relstore.NewMemory()
	} else {
		db, err = relstore.Open(cfg.DBPath)
		if err != nil {
			return nil, err
		}
	}
	hist, err := historian.Open(historian.Options{Dir: cfg.HistorianDir})
	if err != nil {
		db.Close()
		return nil, err
	}
	model, err := oosm.NewModel(db)
	if err != nil {
		return nil, err
	}
	engine, err := pdme.NewWithHistorian(model, ChillerGroups(), hist)
	if err != nil {
		return nil, err
	}
	if cfg.Health != nil {
		if err := engine.ConfigureHealth(*cfg.Health); err != nil {
			return nil, err
		}
	}
	if cfg.DedupWindow > 0 {
		engine.ConfigureDedup(cfg.DedupWindow)
	}
	// Model the monitored machine itself. A persistent model (DBPath) may
	// already hold it from a previous process life — adopt rather than
	// accumulate twins. This must precede journal recovery so the machine's
	// object id is allocated before replay posts conclusion objects,
	// keeping component ids stable across restarts.
	if err := model.RegisterClass(oosm.Class{
		Name: "chiller",
		Props: map[string]oosm.PropType{
			"name":         oosm.PropString,
			"manufacturer": oosm.PropString,
		},
	}); err != nil {
		return nil, err
	}
	var machine oosm.ObjectID
	if existing, err := model.FindByProp("chiller", "name", "A/C Chiller 1"); err == nil && len(existing) > 0 {
		machine = existing[0]
	} else {
		machine, err = model.Create("chiller", map[string]any{
			"name": "A/C Chiller 1", "manufacturer": "Carrier",
		})
		if err != nil {
			return nil, err
		}
	}
	var recovery pdme.RecoveryStats
	if cfg.JournalDir != "" {
		recovery, err = engine.OpenJournal(pdme.JournalOptions{
			Dir:             cfg.JournalDir,
			CheckpointEvery: cfg.JournalCheckpointEvery,
		})
		if err != nil {
			return nil, err
		}
	}
	dcCfg := dc.DefaultConfig("dc-1", machine.String())
	dcCfg.EnableSBFR = cfg.EnableSBFR
	dcCfg.Historian = hist
	if cfg.VibrationInterval > 0 {
		dcCfg.VibrationInterval = cfg.VibrationInterval
	}
	if cfg.ProcessInterval > 0 {
		dcCfg.ProcessInterval = cfg.ProcessInterval
	}
	if !cfg.Start.IsZero() {
		dcCfg.Start = cfg.Start
	}
	dcCfg.HeartbeatInterval = cfg.Heartbeat
	conc, err := dc.New(dcCfg, plant, db, engine)
	if err != nil {
		return nil, err
	}
	return &Station{Plant: plant, DC: conc, PDME: engine, Machine: machine,
		Historian: hist, Recovery: recovery, db: db}, nil
}

// InjectFault sets a failure mode's severity on the plant.
func (s *Station) InjectFault(f Fault, severity float64) error {
	return s.Plant.SetFault(f, severity)
}

// SetLoad sets the plant load fraction.
func (s *Station) SetLoad(frac float64) error { return s.Plant.SetLoad(frac) }

// Advance runs the station's virtual clock forward, executing scheduled
// tests and fusing the resulting reports.
func (s *Station) Advance(d time.Duration) error { return s.DC.RunFor(d) }

// Belief returns the PDME's fused belief in a fault on the machine.
func (s *Station) Belief(f Fault) (float64, error) {
	return s.PDME.Belief(s.Machine.String(), f.String())
}

// FusedPrognostic returns the fused failure-probability vector for a fault.
func (s *Station) FusedPrognostic(f Fault) PrognosticVector {
	return s.PDME.FusedPrognostic(s.Machine.String(), f.String())
}

// PrioritizedList returns the fused maintenance list.
func (s *Station) PrioritizedList() []MaintenanceItem { return s.PDME.PrioritizedList() }

// Browser renders the Figure 2-style machine display.
func (s *Station) Browser() (string, error) {
	return s.PDME.RenderBrowser(s.Machine.String())
}

// OpenViews attaches a read-side serving tier to the station's PDME:
// materialized ranked/belief/trend views invalidated by fusion events, plus
// Watch subscriptions. Close the returned Views before closing the station.
// Serve its HTTP API with serving.Server or serving.NewHandler.
func (s *Station) OpenViews(opts ServingOptions) (*Views, error) {
	return serving.Open(s.PDME, opts)
}

// Close releases the PDME subscription, the shared historian, and the
// backing database.
func (s *Station) Close() error {
	s.PDME.Close()
	err := s.Historian.Close()
	if dbErr := s.db.Close(); err == nil {
		err = dbErr
	}
	return err
}

// FleetConfig configures a multi-DC deployment reporting to one PDME over
// TCP — the paper's distributed architecture: "Conclusions reached by these
// algorithms are then sent over the ship's network to a centrally located
// machine" (§1.1).
type FleetConfig struct {
	// DCCount is the number of data concentrators (one chiller each).
	DCCount int
	// SeedBase offsets each plant's random seed.
	SeedBase int64
	// Addr is the PDME listen address ("127.0.0.1:0" for tests).
	Addr string
	// SpoolDir persists each station's store-and-forward spool under a
	// per-DC subdirectory; empty keeps the spools in memory (reports then
	// survive outages but not a DC process restart).
	SpoolDir string
	// Uplink tunes the stations' transport (timeouts, backoff, capacity);
	// Addr, DCID, and SpoolDir are filled in per station. Zero values take
	// the uplink package defaults.
	Uplink uplink.Config
	// DialVia, when set, is called with the PDME's bound address and
	// returns the address stations should dial instead — the hook where
	// chaos tests interpose a netfault proxy.
	DialVia func(pdmeAddr string) (string, error)
	// StationDialVia is the per-station variant of DialVia: it receives the
	// station index as well, so chaos tests can give each DC its own proxy
	// and partition them independently. When set it takes precedence over
	// DialVia.
	StationDialVia func(station int, pdmeAddr string) (string, error)
	// WrapSource, when set, interposes on each station's plant before the
	// DC instruments it — the hook where chaos tests inject sensor faults
	// (stuck channels, dropouts) for a single station.
	WrapSource func(station int, src Source) Source
	// Heartbeat schedules each DC's liveness heartbeat at this interval
	// (0: no heartbeats). Heartbeats ride the uplink out-of-band: they are
	// never spooled, and a dropped heartbeat is itself the outage signal.
	Heartbeat time.Duration
	// Health, when set, enables staleness-discounted fusion on the fleet's
	// PDME; nil keeps classic undiscounted fusion while the health registry
	// still tracks per-DC liveness.
	Health *HealthConfig
	// DedupWindow overrides the PDME's per-DC duplicate-suppression window
	// capacity (0: proto.DefaultDedupWindow, 4096 sequences).
	DedupWindow int
	// FlushTimeout bounds Advance's post-run spool drain (0: 60s).
	FlushTimeout time.Duration
}

// Fleet is a PDME plus several networked DCs.
type Fleet struct {
	// PDME is the central engine.
	PDME *pdme.PDME
	// Addr is the PDME's bound TCP address.
	Addr string
	// Stations hold each DC and its plant; their uplinks dial Addr (or the
	// DialVia override).
	Stations []*FleetStation

	flushTimeout time.Duration

	mu     sync.Mutex
	server *proto.Server
	db     *relstore.DB
}

// FleetStation is one DC of a fleet.
type FleetStation struct {
	Plant   *chiller.Plant
	DC      *dc.DC
	Machine oosm.ObjectID
	// Uplink is the station's resilient transport: it spools reports while
	// the PDME is unreachable, redials with backoff, and tags deliveries
	// for server-side dedup. Counters() exposes delivery statistics.
	Uplink *uplink.Uplink

	upCfg uplink.Config
}

// NewFleet assembles and starts a fleet.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.DCCount < 1 {
		return nil, fmt.Errorf("mpros: fleet needs at least one DC")
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.FlushTimeout <= 0 {
		cfg.FlushTimeout = 60 * time.Second
	}
	db := relstore.NewMemory()
	model, err := oosm.NewModel(db)
	if err != nil {
		return nil, err
	}
	engine, err := pdme.New(model, ChillerGroups())
	if err != nil {
		return nil, err
	}
	if err := model.RegisterClass(oosm.Class{
		Name:  "chiller",
		Props: map[string]oosm.PropType{"name": oosm.PropString},
	}); err != nil {
		return nil, err
	}
	if cfg.Health != nil {
		if err := engine.ConfigureHealth(*cfg.Health); err != nil {
			engine.Close()
			db.Close()
			return nil, err
		}
	}
	if cfg.DedupWindow > 0 {
		engine.ConfigureDedup(cfg.DedupWindow)
	}
	addr, server, err := engine.Serve(cfg.Addr)
	if err != nil {
		return nil, err
	}
	dialAddr := addr
	if cfg.DialVia != nil {
		if dialAddr, err = cfg.DialVia(addr); err != nil {
			server.Close()
			engine.Close()
			db.Close()
			return nil, err
		}
	}
	f := &Fleet{PDME: engine, Addr: addr, server: server, db: db,
		flushTimeout: cfg.FlushTimeout}
	for i := 0; i < cfg.DCCount; i++ {
		plantCfg := chiller.DefaultConfig()
		plantCfg.Seed = cfg.SeedBase + int64(i)
		plant, err := chiller.New(plantCfg)
		if err != nil {
			f.Close()
			return nil, err
		}
		machine, err := model.Create("chiller", map[string]any{
			"name": fmt.Sprintf("A/C Chiller %d", i+1),
		})
		if err != nil {
			f.Close()
			return nil, err
		}
		dcid := fmt.Sprintf("dc-%d", i+1)
		upCfg := cfg.Uplink
		upCfg.Addr = dialAddr
		upCfg.DCID = dcid
		if cfg.StationDialVia != nil {
			if upCfg.Addr, err = cfg.StationDialVia(i, addr); err != nil {
				f.Close()
				return nil, err
			}
		}
		if cfg.SpoolDir != "" {
			upCfg.SpoolDir = filepath.Join(cfg.SpoolDir, dcid)
		}
		up, err := uplink.New(upCfg)
		if err != nil {
			f.Close()
			return nil, err
		}
		dcCfg := dc.DefaultConfig(dcid, machine.String())
		dcCfg.HeartbeatInterval = cfg.Heartbeat
		var src Source = plant
		if cfg.WrapSource != nil {
			src = cfg.WrapSource(i, src)
		}
		conc, err := dc.New(dcCfg, src, relstore.NewMemory(), up)
		if err != nil {
			up.Close()
			f.Close()
			return nil, err
		}
		f.Stations = append(f.Stations, &FleetStation{
			Plant: plant, DC: conc, Machine: machine, Uplink: up, upCfg: upCfg,
		})
	}
	return f, nil
}

// Advance runs every DC's virtual clock forward by d, then drains the
// stations' spools so fused beliefs reflect every report generated — a
// mid-Advance outage only delays delivery, it never loses reports.
func (f *Fleet) Advance(d time.Duration) error {
	for _, s := range f.Stations {
		if err := s.DC.RunFor(d); err != nil {
			return err
		}
	}
	return f.Flush(f.flushTimeout)
}

// Flush blocks until every station's spool is drained or the timeout
// elapses (e.g. the PDME is still partitioned away).
func (f *Fleet) Flush(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for _, s := range f.Stations {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			remaining = time.Millisecond
		}
		if err := s.Uplink.Flush(remaining); err != nil {
			return err
		}
	}
	return nil
}

// RestartUplink tears down station i's uplink and builds a fresh one from
// the same configuration — a DC process restart without losing the plant or
// analyzer state. A persistent spool (FleetConfig.SpoolDir) carries pending
// reports across the restart; the new uplink draws a fresh incarnation id,
// so repeated restarts register as flapping in the PDME's health registry.
func (f *Fleet) RestartUplink(i int) error {
	if i < 0 || i >= len(f.Stations) {
		return fmt.Errorf("mpros: no station %d", i)
	}
	s := f.Stations[i]
	if s.Uplink != nil {
		if err := s.Uplink.Close(); err != nil {
			return err
		}
	}
	up, err := uplink.New(s.upCfg)
	if err != nil {
		return err
	}
	if err := s.DC.SetUplink(up); err != nil {
		up.Close()
		return err
	}
	s.Uplink = up
	return nil
}

// OpenViews attaches a read-side serving tier to the fleet's central PDME,
// so dashboards read cached views while the stations' reports stream in over
// TCP. Close the returned Views before closing the fleet.
func (f *Fleet) OpenViews(opts ServingOptions) (*Views, error) {
	return serving.Open(f.PDME, opts)
}

// StopServer closes the PDME's report server, severing every station
// mid-whatever-it-was-doing. Stations spool until RestartServer.
func (f *Fleet) StopServer() error {
	f.mu.Lock()
	server := f.server
	f.server = nil
	f.mu.Unlock()
	if server == nil {
		return nil
	}
	return server.Close()
}

// RestartServer rebinds the PDME's report server on the same address (after
// StopServer, or to bounce a live one). The PDME's dedup window persists
// across the restart, so replayed reports are not double-fused.
func (f *Fleet) RestartServer() error {
	if err := f.StopServer(); err != nil {
		return err
	}
	_, server, err := f.PDME.Serve(f.Addr)
	if err != nil {
		return err
	}
	f.mu.Lock()
	f.server = server
	f.mu.Unlock()
	return nil
}

// Close shuts down uplinks, the server, and the PDME.
func (f *Fleet) Close() error {
	for _, s := range f.Stations {
		if s.Uplink != nil {
			s.Uplink.Close()
		}
	}
	f.mu.Lock()
	server := f.server
	f.server = nil
	f.mu.Unlock()
	var err error
	if server != nil {
		err = server.Close()
	}
	f.PDME.Close()
	if dbErr := f.db.Close(); err == nil {
		err = dbErr
	}
	return err
}
