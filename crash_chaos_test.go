package mpros

import (
	"bufio"
	"fmt"
	"math"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"testing"
	"time"

	"repro/internal/chiller"
	"repro/internal/oosm"
	"repro/internal/pdme"
	"repro/internal/relstore"
)

// TestMain doubles as the crash-chaos child process: re-executed with
// MPROS_CRASH_CHILD=1, the test binary becomes a minimal journaled PDME
// server that the parent test SIGKILLs at will. Running the child inside
// the test binary keeps the harness self-contained — no separate build
// step, and `go test -race .` races the child too.
func TestMain(m *testing.M) {
	if os.Getenv("MPROS_CRASH_CHILD") == "1" {
		crashChildRun()
		return
	}
	os.Exit(m.Run())
}

// crashChildRun is the child body: an in-memory-model PDME with the
// journal open, serving the §7 wire protocol at the addressed port. It
// prints READY once the listener is up and then blocks until killed —
// there is deliberately no graceful-shutdown path; SIGKILL is the only
// exit.
func crashChildRun() {
	dir := os.Getenv("MPROS_CRASH_DIR")
	addr := os.Getenv("MPROS_CRASH_ADDR")
	model, err := oosm.NewModel(relstore.NewMemory())
	if err != nil {
		crashChildFail(err)
	}
	engine, err := pdme.New(model, ChillerGroups())
	if err != nil {
		crashChildFail(err)
	}
	// An aggressive cadence (vs the 1024 default) so random kills land
	// mid-checkpoint, not just mid-append.
	if _, err := engine.OpenJournal(pdme.JournalOptions{Dir: dir, CheckpointEvery: 8}); err != nil {
		crashChildFail(err)
	}
	if _, _, err := engine.Serve(addr); err != nil {
		crashChildFail(err)
	}
	fmt.Println("READY")
	select {}
}

func crashChildFail(err error) {
	fmt.Fprintln(os.Stderr, "crash child:", err)
	os.Exit(2)
}

// crashChild manages one child incarnation from the parent side.
type crashChild struct {
	t    *testing.T
	dir  string
	addr string
	cmd  *exec.Cmd
}

// start spawns a fresh child over the same journal dir and address and
// waits for its READY handshake (recovery has finished and the listener
// is bound — uplinks redialing the fixed address will reach it).
func (c *crashChild) start() {
	c.t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(),
		"MPROS_CRASH_CHILD=1",
		"MPROS_CRASH_DIR="+c.dir,
		"MPROS_CRASH_ADDR="+c.addr,
	)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		c.t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		c.t.Fatal(err)
	}
	ready := make(chan bool, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if sc.Text() == "READY" {
				ready <- true
				// Keep draining so the child never blocks on a full pipe.
				for sc.Scan() {
				}
				return
			}
		}
		ready <- false
	}()
	select {
	case ok := <-ready:
		if !ok {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			c.t.Fatal("crash child exited before READY")
		}
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		c.t.Fatal("crash child did not become READY in 30s")
	}
	c.cmd = cmd
}

// kill SIGKILLs the child — no flush, no checkpoint, no courtesy.
func (c *crashChild) kill() {
	c.t.Helper()
	if c.cmd == nil {
		return
	}
	_ = c.cmd.Process.Kill()
	_ = c.cmd.Wait() // reap; error is the expected kill signal
	c.cmd = nil
}

// TestCrashChaosKill9Recovery is the durability acceptance scenario: a
// fleet reports to an out-of-process journaled PDME that is SIGKILLed at
// randomized points (mid-append, mid-checkpoint) and restarted over the
// same journal; DC uplinks redial and drain their persistent spools. After
// a final kill, the journal is recovered in-process and the result must
// match an undisturbed in-process run exactly — same received count (zero
// lost, zero double-fused) and bit-identical beliefs.
func TestCrashChaosKill9Recovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes")
	}
	faults := []chiller.Fault{chiller.MotorImbalance, chiller.GearToothWear}
	const seedBase = 7500
	phases := []time.Duration{4 * time.Hour, 4 * time.Hour, 6 * time.Hour, 4 * time.Hour}

	// Undisturbed reference: the fleet reports to its own in-process PDME.
	base, err := NewFleet(chaosFleetConfig(seedBase, ""))
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range base.Stations {
		if err := st.Plant.SetFault(faults[i], 0.8); err != nil {
			t.Fatal(err)
		}
	}
	for _, d := range phases {
		if err := base.Advance(d); err != nil {
			t.Fatal(err)
		}
	}
	want := collectOutcome(t, base, faults)
	if err := base.Close(); err != nil {
		t.Fatal(err)
	}
	if want.received == 0 {
		t.Fatal("reference run produced no reports")
	}

	// Pick a fixed port for the child: every incarnation rebinds it so the
	// uplinks' redial loop finds the restarted server without help.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	childAddr := probe.Addr().String()
	_ = probe.Close()

	journalDir := t.TempDir()
	child := &crashChild{t: t, dir: journalDir, addr: childAddr}
	child.start()
	defer child.kill()

	// Chaos fleet: same seeds and schedule, but every uplink dials the
	// child instead of the fleet's own PDME, and spools persist on disk so
	// nothing is lost while the child is down.
	cfg := chaosFleetConfig(seedBase, t.TempDir())
	cfg.DialVia = func(string) (string, error) { return childAddr, nil }
	f, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i, st := range f.Stations {
		if err := st.Plant.SetFault(faults[i], 0.8); err != nil {
			t.Fatal(err)
		}
	}

	// Fixed seed: reproducible kill schedule, no wall clock involved.
	rng := rand.New(rand.NewSource(7500))
	kills := 0
	for phase, d := range phases {
		done := make(chan error, 1)
		go func() { done <- f.Advance(d) }()
		// Phases 2 and 3 get SIGKILLed mid-flight (twice, then once);
		// phases 1 and 4 run clean so the journal also proves itself on
		// quiescent restarts.
		for k := 0; k < []int{0, 2, 1, 0}[phase]; k++ {
			time.Sleep(time.Duration(5+rng.Intn(35)) * time.Millisecond)
			child.kill()
			kills++
			child.start()
		}
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Flush(time.Minute); err != nil {
		t.Fatal(err)
	}
	for i, st := range f.Stations {
		c := st.Uplink.Counters()
		if c.Dropped != 0 {
			t.Errorf("station %v dropped %d reports", st.Machine, c.Dropped)
		}
		if st.Uplink.Pending() != 0 {
			t.Errorf("station %v still has %d spooled", st.Machine, st.Uplink.Pending())
		}
		t.Logf("station %d uplink: sent=%d acked=%d retried=%d spooled=%d replayed=%d dup=%d",
			i, c.Sent, c.Acked, c.Retried, c.Spooled, c.Replayed, c.DedupAcks)
	}
	if kills == 0 {
		t.Fatal("chaos schedule performed no kills — scenario is vacuous")
	}

	// Final kill-9, then recover the journal in-process: this is exactly
	// what the next pdmed boot would do.
	child.kill()
	model, err := oosm.NewModel(relstore.NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := pdme.New(model, ChillerGroups())
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	stats, err := rec.OpenJournal(pdme.JournalOptions{Dir: journalDir})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.CheckpointLoaded {
		t.Error("no checkpoint survived despite the 8-record cadence")
	}
	if stats.SkippedRecords != 0 {
		t.Errorf("%d journal records skipped on recovery", stats.SkippedRecords)
	}
	t.Logf("kills=%d recovery: checkpoint@%d + %d replayed reports (torn bytes %d)",
		kills, stats.CheckpointSeq, stats.ReportsReplayed, stats.TornBytes)

	if got := rec.ReceivedReports(); got != want.received {
		t.Errorf("recovered PDME fused %d reports, undisturbed run %d (lost or duplicated fusion)",
			got, want.received)
	}
	for i, st := range f.Stations {
		for _, fault := range faults {
			key := fmt.Sprintf("%d|%s", i, fault)
			b, err := rec.Belief(st.Machine.String(), fault.String())
			if err != nil {
				b = -1
			}
			if wb := want.beliefs[key]; math.Abs(b-wb) > 1e-12 {
				t.Errorf("belief[%s] = %v after crash recovery, undisturbed %v", key, b, wb)
			}
		}
	}
	ranked := rec.PrioritizedList()
	if len(ranked) == 0 || ranked[0].Belief < 0.9 {
		t.Errorf("recovered prioritized list unconvincing: %+v", ranked)
	}
}
