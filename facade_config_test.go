package mpros

import (
	"testing"
	"time"

	"repro/internal/chiller"
)

func TestStationConfigOverrides(t *testing.T) {
	start := time.Date(1999, 1, 1, 0, 0, 0, 0, time.UTC)
	s, err := NewStation(StationConfig{
		Seed:              3,
		VibrationInterval: time.Hour,
		ProcessInterval:   10 * time.Minute,
		Start:             start,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.DC.Scheduler().Now(); !got.Equal(start) {
		t.Errorf("start %v, want %v", got, start)
	}
	if err := s.InjectFault(chiller.MotorImbalance, 0.8); err != nil {
		t.Fatal(err)
	}
	// With a 1-hour vibration interval, 6 hours produce 7 tests (t=0..6h),
	// each reporting the strong fault.
	if err := s.Advance(6 * time.Hour); err != nil {
		t.Fatal(err)
	}
	rows, err := s.DC.StoredReports(chiller.MotorImbalance.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Errorf("%d vibration reports, want 7 (hourly schedule)", len(rows))
	}
}

func TestSetLoadAndMachineIdentity(t *testing.T) {
	s, err := NewStation(StationConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.SetLoad(0.25); err != nil {
		t.Fatal(err)
	}
	if s.Plant.Load() != 0.25 {
		t.Error("load override lost")
	}
	if err := s.SetLoad(5); err == nil {
		t.Error("invalid load accepted")
	}
	if s.Machine.IsZero() {
		t.Error("machine id unset")
	}
	// The machine exists in the ship model with its configured name.
	props, err := s.PDME.Model().Get(s.Machine)
	if err != nil || props["name"] != "A/C Chiller 1" {
		t.Errorf("machine object: %v %v", props, err)
	}
}

func TestStationOpenFailurePropagates(t *testing.T) {
	// An unwritable DB path must fail construction, not panic later.
	if _, err := NewStation(StationConfig{Seed: 1, DBPath: "/proc/definitely/not/writable/db"}); err == nil {
		t.Fatal("unwritable path accepted")
	}
}
