package mpros

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/chiller"
	"repro/internal/netfault"
	"repro/internal/uplink"
)

func TestChillerGroupsCoverAllFaults(t *testing.T) {
	g := ChillerGroups()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, conds := range g {
		total += len(conds)
	}
	if total != chiller.NumFaults {
		t.Errorf("groups cover %d of %d faults", total, chiller.NumFaults)
	}
}

func TestStationEndToEnd(t *testing.T) {
	s, err := NewStation(StationConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Healthy day: no conclusions.
	if err := s.Advance(24 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if items := s.PrioritizedList(); len(items) != 0 {
		t.Fatalf("healthy station produced conclusions: %+v", items)
	}
	// Inject a fault and run another day.
	if err := s.InjectFault(chiller.MotorImbalance, 0.75); err != nil {
		t.Fatal(err)
	}
	if err := s.Advance(24 * time.Hour); err != nil {
		t.Fatal(err)
	}
	b, err := s.Belief(chiller.MotorImbalance)
	if err != nil {
		t.Fatal(err)
	}
	if b < 0.9 {
		t.Errorf("fused belief %g after a day of reinforcing reports", b)
	}
	items := s.PrioritizedList()
	if len(items) == 0 || items[0].Condition != chiller.MotorImbalance.String() {
		t.Fatalf("prioritized list: %+v", items)
	}
	if !items[0].HasPrognostic {
		t.Error("top item missing prognostic")
	}
	if v := s.FusedPrognostic(chiller.MotorImbalance); len(v) == 0 {
		t.Error("no fused prognostic vector")
	}
	view, err := s.Browser()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(view, chiller.MotorImbalance.String()) {
		t.Errorf("browser view missing condition:\n%s", view)
	}
}

func TestStationPersistence(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/station.db"
	s, err := NewStation(StationConfig{Seed: 6, DBPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InjectFault(chiller.StatorElectrical, 0.8); err != nil {
		t.Fatal(err)
	}
	if err := s.Advance(8 * time.Hour); err != nil {
		t.Fatal(err)
	}
	reports, err := s.DC.StoredReports("")
	if err != nil || len(reports) == 0 {
		t.Fatalf("stored reports %d err %v", len(reports), err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: the DC database (and model tables) replay from the log.
	s2, err := NewStation(StationConfig{Seed: 6, DBPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	reports2, err := s2.DC.StoredReports("")
	if err != nil {
		t.Fatal(err)
	}
	if len(reports2) < len(reports) {
		t.Errorf("replayed %d reports, had %d", len(reports2), len(reports))
	}
}

func TestFleetOverTCP(t *testing.T) {
	f, err := NewFleet(FleetConfig{DCCount: 3, SeedBase: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Different fault on each chiller.
	faults := []chiller.Fault{chiller.MotorImbalance, chiller.GearToothWear, chiller.OilWhirl}
	for i, st := range f.Stations {
		if err := st.Plant.SetFault(faults[i], 0.8); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Advance(12 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if f.PDME.ReceivedReports() == 0 {
		t.Fatal("PDME received nothing over TCP")
	}
	for i, st := range f.Stations {
		b, err := f.PDME.Belief(st.Machine.String(), faults[i].String())
		if err != nil {
			t.Fatal(err)
		}
		if b < 0.8 {
			t.Errorf("station %d: fused belief %g for %v", i, b, faults[i])
		}
		// Cross-machine independence: chiller 1's fault is not believed on
		// chiller 2.
		other := f.Stations[(i+1)%len(f.Stations)]
		ob, _ := f.PDME.Belief(other.Machine.String(), faults[i].String())
		if ob >= b {
			t.Errorf("fault %v leaked to another machine: %g vs %g", faults[i], ob, b)
		}
	}
	if _, err := NewFleet(FleetConfig{DCCount: 0}); err == nil {
		t.Error("zero DC fleet should error")
	}
}

// chaosFleetConfig tunes a fleet for fast recovery in tests.
func chaosFleetConfig(seedBase int64, spoolDir string) FleetConfig {
	return FleetConfig{
		DCCount:  2,
		SeedBase: seedBase,
		SpoolDir: spoolDir,
		Uplink: uplink.Config{
			DialTimeout: 2 * time.Second,
			SendTimeout: 2 * time.Second,
			BackoffMin:  5 * time.Millisecond,
			BackoffMax:  100 * time.Millisecond,
		},
		FlushTimeout: time.Minute,
	}
}

// fleetOutcome captures everything the chaos run must reproduce exactly.
type fleetOutcome struct {
	received int
	beliefs  map[string]float64
}

// collectOutcome reads fused beliefs for every (station, fault) pair.
func collectOutcome(t *testing.T, f *Fleet, faults []chiller.Fault) fleetOutcome {
	t.Helper()
	out := fleetOutcome{received: f.PDME.ReceivedReports(), beliefs: map[string]float64{}}
	for i, st := range f.Stations {
		for _, fault := range faults {
			key := fmt.Sprintf("%d|%s", i, fault)
			b, err := f.PDME.Belief(st.Machine.String(), fault.String())
			if err != nil {
				b = -1 // no reports for the pair: also part of the invariant
			}
			out.beliefs[key] = b
		}
	}
	return out
}

// TestFleetChaosResilience is the acceptance scenario: with the netfault
// proxy injecting mid-frame resets and a full partition, plus one PDME
// server kill/restart in the middle of an Advance, the fleet loses zero
// reports and fuses beliefs identical to an undisturbed run — the spool
// preserves everything through the outage and the dedup window prevents
// at-least-once redelivery from double-counting Dempster-Shafer evidence.
func TestFleetChaosResilience(t *testing.T) {
	faults := []chiller.Fault{chiller.MotorImbalance, chiller.GearToothWear}
	const seedBase = 7100

	// Undisturbed reference run: 4h + 4h + 6h + 4h of virtual time.
	base, err := NewFleet(chaosFleetConfig(seedBase, ""))
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range base.Stations {
		if err := st.Plant.SetFault(faults[i], 0.8); err != nil {
			t.Fatal(err)
		}
	}
	for _, h := range []time.Duration{4, 4, 6, 4} {
		if err := base.Advance(h * time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	want := collectOutcome(t, base, faults)
	if err := base.Close(); err != nil {
		t.Fatal(err)
	}
	if want.received == 0 {
		t.Fatal("reference run produced no reports")
	}

	// Chaos run: same seeds and virtual schedule, behind the fault proxy.
	var proxy *netfault.Proxy
	cfg := chaosFleetConfig(seedBase, t.TempDir())
	cfg.DialVia = func(pdmeAddr string) (string, error) {
		p, err := netfault.New(pdmeAddr, netfault.Options{Seed: 13})
		proxy = p
		return p.Addr(), err
	}
	f, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	defer func() { proxy.Close() }()
	for i, st := range f.Stations {
		if err := st.Plant.SetFault(faults[i], 0.8); err != nil {
			t.Fatal(err)
		}
	}
	// Phase 1: clean.
	if err := f.Advance(4 * time.Hour); err != nil {
		t.Fatal(err)
	}
	// Phase 2: kill and restart the PDME server mid-Advance, with a burst
	// of mid-frame connection resets around it. Advance's trailing flush
	// drains the spools once the restarted server is reachable.
	done := make(chan error, 1)
	go func() { done <- f.Advance(4 * time.Hour) }()
	time.Sleep(25 * time.Millisecond)
	proxy.KillConns()
	if err := f.RestartServer(); err != nil {
		t.Fatal(err)
	}
	proxy.KillConns()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Phase 3: full partition — the stations keep monitoring (covering a
	// vibration test cycle) and spool every report, then the partition
	// heals and the spools drain.
	proxy.SetPartition(true)
	for _, st := range f.Stations {
		if err := st.DC.RunFor(6 * time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	spooled := 0
	for _, st := range f.Stations {
		spooled += st.Uplink.Pending()
	}
	if spooled == 0 {
		t.Fatal("partition produced no spooled reports — chaos scenario is vacuous")
	}
	proxy.SetPartition(false)
	if err := f.Flush(time.Minute); err != nil {
		t.Fatal(err)
	}
	// Phase 4: clean tail.
	if err := f.Advance(4 * time.Hour); err != nil {
		t.Fatal(err)
	}

	got := collectOutcome(t, f, faults)
	if got.received != want.received {
		t.Errorf("PDME received %d reports under chaos, reference %d (lost or duplicated fusion)",
			got.received, want.received)
	}
	for key, wb := range want.beliefs {
		if gb := got.beliefs[key]; math.Abs(gb-wb) > 1e-12 {
			t.Errorf("belief[%s] = %v under chaos, reference %v", key, gb, wb)
		}
	}
	for _, st := range f.Stations {
		c := st.Uplink.Counters()
		if c.Dropped != 0 {
			t.Errorf("station %v dropped %d reports", st.Machine, c.Dropped)
		}
		if st.Uplink.Pending() != 0 {
			t.Errorf("station %v still has %d pending", st.Machine, st.Uplink.Pending())
		}
	}
}
