package mpros

import (
	"strings"
	"testing"
	"time"

	"repro/internal/chiller"
)

func TestChillerGroupsCoverAllFaults(t *testing.T) {
	g := ChillerGroups()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, conds := range g {
		total += len(conds)
	}
	if total != chiller.NumFaults {
		t.Errorf("groups cover %d of %d faults", total, chiller.NumFaults)
	}
}

func TestStationEndToEnd(t *testing.T) {
	s, err := NewStation(StationConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Healthy day: no conclusions.
	if err := s.Advance(24 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if items := s.PrioritizedList(); len(items) != 0 {
		t.Fatalf("healthy station produced conclusions: %+v", items)
	}
	// Inject a fault and run another day.
	if err := s.InjectFault(chiller.MotorImbalance, 0.75); err != nil {
		t.Fatal(err)
	}
	if err := s.Advance(24 * time.Hour); err != nil {
		t.Fatal(err)
	}
	b, err := s.Belief(chiller.MotorImbalance)
	if err != nil {
		t.Fatal(err)
	}
	if b < 0.9 {
		t.Errorf("fused belief %g after a day of reinforcing reports", b)
	}
	items := s.PrioritizedList()
	if len(items) == 0 || items[0].Condition != chiller.MotorImbalance.String() {
		t.Fatalf("prioritized list: %+v", items)
	}
	if !items[0].HasPrognostic {
		t.Error("top item missing prognostic")
	}
	if v := s.FusedPrognostic(chiller.MotorImbalance); len(v) == 0 {
		t.Error("no fused prognostic vector")
	}
	view, err := s.Browser()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(view, chiller.MotorImbalance.String()) {
		t.Errorf("browser view missing condition:\n%s", view)
	}
}

func TestStationPersistence(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/station.db"
	s, err := NewStation(StationConfig{Seed: 6, DBPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InjectFault(chiller.StatorElectrical, 0.8); err != nil {
		t.Fatal(err)
	}
	if err := s.Advance(8 * time.Hour); err != nil {
		t.Fatal(err)
	}
	reports, err := s.DC.StoredReports("")
	if err != nil || len(reports) == 0 {
		t.Fatalf("stored reports %d err %v", len(reports), err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: the DC database (and model tables) replay from the log.
	s2, err := NewStation(StationConfig{Seed: 6, DBPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	reports2, err := s2.DC.StoredReports("")
	if err != nil {
		t.Fatal(err)
	}
	if len(reports2) < len(reports) {
		t.Errorf("replayed %d reports, had %d", len(reports2), len(reports))
	}
}

func TestFleetOverTCP(t *testing.T) {
	f, err := NewFleet(FleetConfig{DCCount: 3, SeedBase: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Different fault on each chiller.
	faults := []chiller.Fault{chiller.MotorImbalance, chiller.GearToothWear, chiller.OilWhirl}
	for i, st := range f.Stations {
		if err := st.Plant.SetFault(faults[i], 0.8); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Advance(12 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if f.PDME.ReceivedReports() == 0 {
		t.Fatal("PDME received nothing over TCP")
	}
	for i, st := range f.Stations {
		b, err := f.PDME.Belief(st.Machine.String(), faults[i].String())
		if err != nil {
			t.Fatal(err)
		}
		if b < 0.8 {
			t.Errorf("station %d: fused belief %g for %v", i, b, faults[i])
		}
		// Cross-machine independence: chiller 1's fault is not believed on
		// chiller 2.
		other := f.Stations[(i+1)%len(f.Stations)]
		ob, _ := f.PDME.Belief(other.Machine.String(), faults[i].String())
		if ob >= b {
			t.Errorf("fault %v leaked to another machine: %g vs %g", faults[i], ob, b)
		}
	}
	if _, err := NewFleet(FleetConfig{DCCount: 0}); err == nil {
		t.Error("zero DC fleet should error")
	}
}
