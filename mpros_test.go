package mpros

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/chiller"
	"repro/internal/netfault"
	"repro/internal/pdme"
	"repro/internal/uplink"
)

func TestChillerGroupsCoverAllFaults(t *testing.T) {
	g := ChillerGroups()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, conds := range g {
		total += len(conds)
	}
	if total != chiller.NumFaults {
		t.Errorf("groups cover %d of %d faults", total, chiller.NumFaults)
	}
}

func TestStationEndToEnd(t *testing.T) {
	s, err := NewStation(StationConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Healthy day: no conclusions.
	if err := s.Advance(24 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if items := s.PrioritizedList(); len(items) != 0 {
		t.Fatalf("healthy station produced conclusions: %+v", items)
	}
	// Inject a fault and run another day.
	if err := s.InjectFault(chiller.MotorImbalance, 0.75); err != nil {
		t.Fatal(err)
	}
	if err := s.Advance(24 * time.Hour); err != nil {
		t.Fatal(err)
	}
	b, err := s.Belief(chiller.MotorImbalance)
	if err != nil {
		t.Fatal(err)
	}
	if b < 0.9 {
		t.Errorf("fused belief %g after a day of reinforcing reports", b)
	}
	items := s.PrioritizedList()
	if len(items) == 0 || items[0].Condition != chiller.MotorImbalance.String() {
		t.Fatalf("prioritized list: %+v", items)
	}
	if !items[0].HasPrognostic {
		t.Error("top item missing prognostic")
	}
	if v := s.FusedPrognostic(chiller.MotorImbalance); len(v) == 0 {
		t.Error("no fused prognostic vector")
	}
	view, err := s.Browser()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(view, chiller.MotorImbalance.String()) {
		t.Errorf("browser view missing condition:\n%s", view)
	}
}

func TestStationPersistence(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/station.db"
	s, err := NewStation(StationConfig{Seed: 6, DBPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InjectFault(chiller.StatorElectrical, 0.8); err != nil {
		t.Fatal(err)
	}
	if err := s.Advance(8 * time.Hour); err != nil {
		t.Fatal(err)
	}
	reports, err := s.DC.StoredReports("")
	if err != nil || len(reports) == 0 {
		t.Fatalf("stored reports %d err %v", len(reports), err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: the DC database (and model tables) replay from the log.
	s2, err := NewStation(StationConfig{Seed: 6, DBPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	reports2, err := s2.DC.StoredReports("")
	if err != nil {
		t.Fatal(err)
	}
	if len(reports2) < len(reports) {
		t.Errorf("replayed %d reports, had %d", len(reports2), len(reports))
	}
}

func TestFleetOverTCP(t *testing.T) {
	f, err := NewFleet(FleetConfig{DCCount: 3, SeedBase: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Different fault on each chiller.
	faults := []chiller.Fault{chiller.MotorImbalance, chiller.GearToothWear, chiller.OilWhirl}
	for i, st := range f.Stations {
		if err := st.Plant.SetFault(faults[i], 0.8); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Advance(12 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if f.PDME.ReceivedReports() == 0 {
		t.Fatal("PDME received nothing over TCP")
	}
	for i, st := range f.Stations {
		b, err := f.PDME.Belief(st.Machine.String(), faults[i].String())
		if err != nil {
			t.Fatal(err)
		}
		if b < 0.8 {
			t.Errorf("station %d: fused belief %g for %v", i, b, faults[i])
		}
		// Cross-machine independence: chiller 1's fault is not believed on
		// chiller 2.
		other := f.Stations[(i+1)%len(f.Stations)]
		ob, _ := f.PDME.Belief(other.Machine.String(), faults[i].String())
		if ob >= b {
			t.Errorf("fault %v leaked to another machine: %g vs %g", faults[i], ob, b)
		}
	}
	if _, err := NewFleet(FleetConfig{DCCount: 0}); err == nil {
		t.Error("zero DC fleet should error")
	}
}

// chaosFleetConfig tunes a fleet for fast recovery in tests.
func chaosFleetConfig(seedBase int64, spoolDir string) FleetConfig {
	return FleetConfig{
		DCCount:  2,
		SeedBase: seedBase,
		SpoolDir: spoolDir,
		Uplink: uplink.Config{
			DialTimeout: 2 * time.Second,
			SendTimeout: 2 * time.Second,
			BackoffMin:  5 * time.Millisecond,
			BackoffMax:  100 * time.Millisecond,
		},
		FlushTimeout: time.Minute,
	}
}

// fleetOutcome captures everything the chaos run must reproduce exactly.
type fleetOutcome struct {
	received int
	beliefs  map[string]float64
}

// collectOutcome reads fused beliefs for every (station, fault) pair.
func collectOutcome(t *testing.T, f *Fleet, faults []chiller.Fault) fleetOutcome {
	t.Helper()
	out := fleetOutcome{received: f.PDME.ReceivedReports(), beliefs: map[string]float64{}}
	for i, st := range f.Stations {
		for _, fault := range faults {
			key := fmt.Sprintf("%d|%s", i, fault)
			b, err := f.PDME.Belief(st.Machine.String(), fault.String())
			if err != nil {
				b = -1 // no reports for the pair: also part of the invariant
			}
			out.beliefs[key] = b
		}
	}
	return out
}

// TestFleetChaosResilience is the acceptance scenario: with the netfault
// proxy injecting mid-frame resets and a full partition, plus one PDME
// server kill/restart in the middle of an Advance, the fleet loses zero
// reports and fuses beliefs identical to an undisturbed run — the spool
// preserves everything through the outage and the dedup window prevents
// at-least-once redelivery from double-counting Dempster-Shafer evidence.
func TestFleetChaosResilience(t *testing.T) {
	faults := []chiller.Fault{chiller.MotorImbalance, chiller.GearToothWear}
	const seedBase = 7100

	// Undisturbed reference run: 4h + 4h + 6h + 4h of virtual time.
	base, err := NewFleet(chaosFleetConfig(seedBase, ""))
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range base.Stations {
		if err := st.Plant.SetFault(faults[i], 0.8); err != nil {
			t.Fatal(err)
		}
	}
	for _, h := range []time.Duration{4, 4, 6, 4} {
		if err := base.Advance(h * time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	want := collectOutcome(t, base, faults)
	if err := base.Close(); err != nil {
		t.Fatal(err)
	}
	if want.received == 0 {
		t.Fatal("reference run produced no reports")
	}

	// Chaos run: same seeds and virtual schedule, behind the fault proxy.
	var proxy *netfault.Proxy
	cfg := chaosFleetConfig(seedBase, t.TempDir())
	cfg.DialVia = func(pdmeAddr string) (string, error) {
		p, err := netfault.New(pdmeAddr, netfault.Options{Seed: 13})
		proxy = p
		return p.Addr(), err
	}
	f, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	defer func() { proxy.Close() }()
	for i, st := range f.Stations {
		if err := st.Plant.SetFault(faults[i], 0.8); err != nil {
			t.Fatal(err)
		}
	}
	// Phase 1: clean.
	if err := f.Advance(4 * time.Hour); err != nil {
		t.Fatal(err)
	}
	// Phase 2: kill and restart the PDME server mid-Advance, with a burst
	// of mid-frame connection resets around it. Advance's trailing flush
	// drains the spools once the restarted server is reachable.
	done := make(chan error, 1)
	go func() { done <- f.Advance(4 * time.Hour) }()
	time.Sleep(25 * time.Millisecond)
	proxy.KillConns()
	if err := f.RestartServer(); err != nil {
		t.Fatal(err)
	}
	proxy.KillConns()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Phase 3: full partition — the stations keep monitoring (covering a
	// vibration test cycle) and spool every report, then the partition
	// heals and the spools drain.
	proxy.SetPartition(true)
	for _, st := range f.Stations {
		if err := st.DC.RunFor(6 * time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	spooled := 0
	for _, st := range f.Stations {
		spooled += st.Uplink.Pending()
	}
	if spooled == 0 {
		t.Fatal("partition produced no spooled reports — chaos scenario is vacuous")
	}
	proxy.SetPartition(false)
	if err := f.Flush(time.Minute); err != nil {
		t.Fatal(err)
	}
	// Phase 4: clean tail.
	if err := f.Advance(4 * time.Hour); err != nil {
		t.Fatal(err)
	}

	got := collectOutcome(t, f, faults)
	if got.received != want.received {
		t.Errorf("PDME received %d reports under chaos, reference %d (lost or duplicated fusion)",
			got.received, want.received)
	}
	for key, wb := range want.beliefs {
		if gb := got.beliefs[key]; math.Abs(gb-wb) > 1e-12 {
			t.Errorf("belief[%s] = %v under chaos, reference %v", key, gb, wb)
		}
	}
	for _, st := range f.Stations {
		c := st.Uplink.Counters()
		if c.Dropped != 0 {
			t.Errorf("station %v dropped %d reports", st.Machine, c.Dropped)
		}
		if st.Uplink.Pending() != 0 {
			t.Errorf("station %v still has %d pending", st.Machine, st.Uplink.Pending())
		}
	}
}

// fleetStart is the fleet DCs' virtual epoch (dc.DefaultConfig Start).
var fleetStart = time.Date(1998, 8, 1, 0, 0, 0, 0, time.UTC)

// chaosHealthConfig tunes the health registry for short test horizons.
func chaosHealthConfig() HealthConfig {
	return HealthConfig{
		LateAfter:        30 * time.Minute,
		SilentAfter:      time.Hour,
		FlapWindow:       3 * time.Hour,
		FlapRestarts:     3,
		FreshFor:         time.Hour,
		StalenessHorizon: 6 * time.Hour,
		ReliabilityFloor: 0.05,
	}
}

// groupOf finds the logical failure group containing a fault.
func groupOf(t *testing.T, fault chiller.Fault) string {
	t.Helper()
	for name, conds := range ChillerGroups() {
		for _, c := range conds {
			if c == fault.String() {
				return name
			}
		}
	}
	t.Fatalf("no group contains %v", fault)
	return ""
}

// waitHealthWatermark polls until the PDME's event-time watermark reaches
// at. Heartbeats ride the uplink asynchronously, so the registry can lag a
// RunFor by a network round trip of real time.
func waitHealthWatermark(t *testing.T, f *Fleet, at time.Time) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for f.PDME.Health().Now().Before(at) {
		if time.Now().After(deadline) {
			t.Fatalf("health watermark stuck at %v, want %v",
				f.PDME.Health().Now(), at)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// stuckSource freezes one accelerometer channel: the first MotorDE frame is
// cached and replayed forever, the fault the DC's channel guard must catch.
type stuckSource struct {
	Source
	cached []float64
}

func (s *stuckSource) AcquireVibration(pt chiller.MeasurementPoint, n int) ([]float64, error) {
	if pt != chiller.MotorDE {
		return s.Source.AcquireVibration(pt, n)
	}
	if s.cached == nil {
		frame, err := s.Source.AcquireVibration(pt, n)
		if err != nil {
			return nil, err
		}
		s.cached = append([]float64(nil), frame...)
	}
	return append([]float64(nil), s.cached...), nil
}

// degradedFleetConfig is chaosFleetConfig plus the fleet-health layer: three
// DCs, heartbeats, staleness-discounted fusion, and a stuck accelerometer on
// station 2 (in every run, so reference and chaos runs stay comparable).
func degradedFleetConfig(seedBase int64, spoolDir string) FleetConfig {
	cfg := chaosFleetConfig(seedBase, spoolDir)
	cfg.DCCount = 3
	cfg.Heartbeat = 10 * time.Minute
	hc := chaosHealthConfig()
	cfg.Health = &hc
	cfg.WrapSource = func(station int, src Source) Source {
		if station == 2 {
			return &stuckSource{Source: src}
		}
		return src
	}
	return cfg
}

// TestFleetChaosDegradedOperation is the fleet-health acceptance scenario:
// one DC of three goes silent behind a partition while another feeds a
// stuck accelerometer. The silenced DC's fused conclusion must decay
// monotonically toward Unknown within the staleness horizon, never outrank
// the identical live conclusion from a healthy DC, and be flagged Degraded;
// the stuck channel must surface in the ship model; and after the partition
// heals the fleet must reconverge bit-for-bit with an undisturbed run.
func TestFleetChaosDegradedOperation(t *testing.T) {
	// The same fault everywhere makes staleness the only ranking variable.
	faults := []chiller.Fault{chiller.MotorImbalance}
	const seedBase = 7300
	group := groupOf(t, chiller.MotorImbalance)
	setFaults := func(f *Fleet) {
		for _, st := range f.Stations {
			if err := st.Plant.SetFault(chiller.MotorImbalance, 0.8); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Undisturbed reference: 4h clean + 6 hourly steps + 2h tail.
	base, err := NewFleet(degradedFleetConfig(seedBase, ""))
	if err != nil {
		t.Fatal(err)
	}
	setFaults(base)
	if err := base.Advance(4 * time.Hour); err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 6; h++ {
		if err := base.Advance(time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	if err := base.Advance(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	waitHealthWatermark(t, base, fleetStart.Add(12*time.Hour))
	want := collectOutcome(t, base, faults)
	if err := base.Close(); err != nil {
		t.Fatal(err)
	}
	if want.received == 0 {
		t.Fatal("reference run produced no reports")
	}

	// Chaos run: station 0 dials through its own netfault proxy.
	var proxy *netfault.Proxy
	cfg := degradedFleetConfig(seedBase, t.TempDir())
	cfg.StationDialVia = func(station int, pdmeAddr string) (string, error) {
		if station != 0 {
			return pdmeAddr, nil
		}
		p, err := netfault.New(pdmeAddr, netfault.Options{Seed: 17})
		proxy = p
		return p.Addr(), err
	}
	f, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	defer func() { proxy.Close() }()
	setFaults(f)

	// Phase 1: clean 4h — everyone reports and heartbeats.
	if err := f.Advance(4 * time.Hour); err != nil {
		t.Fatal(err)
	}
	waitHealthWatermark(t, f, fleetStart.Add(4*time.Hour))
	machine0 := f.Stations[0].Machine.String()
	machine1 := f.Stations[1].Machine.String()
	freshUnknown, err := f.PDME.Unknown(machine0, group)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 2: partition station 0 for the full staleness horizon. The rest
	// of the fleet keeps running hour by hour; station 0 monitors and
	// spools. Unknown mass on its conclusion must rise monotonically.
	proxy.SetPartition(true)
	prev := freshUnknown
	for h := 1; h <= 6; h++ {
		for _, st := range f.Stations {
			if err := st.DC.RunFor(time.Hour); err != nil {
				t.Fatal(err)
			}
		}
		for _, st := range f.Stations[1:] {
			if err := st.Uplink.Flush(time.Minute); err != nil {
				t.Fatal(err)
			}
		}
		waitHealthWatermark(t, f, fleetStart.Add(time.Duration(4+h)*time.Hour))
		unk, err := f.PDME.Unknown(machine0, group)
		if err != nil {
			t.Fatal(err)
		}
		if unk < prev-1e-12 {
			t.Fatalf("hour %d: unknown mass fell %g -> %g", h, prev, unk)
		}
		if h >= 2 && unk <= prev {
			t.Fatalf("hour %d: unknown mass stuck at %g despite growing staleness", h, unk)
		}
		prev = unk
	}
	if prev < 0.9 {
		t.Errorf("after the staleness horizon unknown mass is %g, want >= 0.9", prev)
	}
	if got := f.PDME.Health().StateOf("dc-1"); got != HealthSilent {
		t.Errorf("partitioned DC state %v, want silent", got)
	}
	if got := f.PDME.Health().StateOf("dc-2"); got != HealthAlive {
		t.Errorf("live DC state %v, want alive", got)
	}

	// The stale conclusion must rank below the identical live one, carry the
	// Degraded flag, and show its collapsed reliability.
	items := f.PDME.PrioritizedList()
	rank := func(component string) int {
		for i, it := range items {
			if it.Component == component && it.Condition == chiller.MotorImbalance.String() {
				return i
			}
		}
		t.Fatalf("no %q item for %s in %+v", chiller.MotorImbalance, component, items)
		return -1
	}
	stale, live := rank(machine0), rank(machine1)
	if stale <= live {
		t.Errorf("stale conclusion ranked %d, above live identical conclusion at %d", stale, live)
	}
	if !items[stale].Degraded || items[stale].Reliability > 0.1 {
		t.Errorf("stale item not flagged: %+v", items[stale])
	}
	// The live DC's latest vibration report is itself an hour or two old, so
	// a mild discount is honest; what matters is the wide margin.
	if items[live].Reliability < 4*items[stale].Reliability {
		t.Errorf("live item reliability %g not well above stale %g",
			items[live].Reliability, items[stale].Reliability)
	}
	if items[live].Belief < 2*items[stale].Belief {
		t.Errorf("live belief %g not well above stale %g",
			items[live].Belief, items[stale].Belief)
	}

	// The stuck accelerometer on station 2 surfaces as a suspect-channel
	// annotation on its stored reports.
	ids, err := f.PDME.Model().FindByProp(pdme.ReportClass, "suspect", "vib/motor-de")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) == 0 {
		t.Error("no report carries the stuck channel vib/motor-de")
	}

	// Heal: the spool drains, a fresh test cycle runs, and the fleet
	// reconverges on the undisturbed outcome exactly.
	proxy.SetPartition(false)
	if err := f.Flush(time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := f.Advance(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	waitHealthWatermark(t, f, fleetStart.Add(12*time.Hour))
	if got := f.PDME.Health().StateOf("dc-1"); got != HealthAlive {
		t.Errorf("healed DC state %v, want alive", got)
	}
	for _, it := range f.PDME.PrioritizedList() {
		if it.Degraded {
			t.Errorf("degraded item after heal: %+v", it)
		}
	}
	got := collectOutcome(t, f, faults)
	if got.received != want.received {
		t.Errorf("PDME received %d reports under chaos, reference %d", got.received, want.received)
	}
	for key, wb := range want.beliefs {
		if gb := got.beliefs[key]; math.Abs(gb-wb) > 1e-12 {
			t.Errorf("belief[%s] = %v under chaos, reference %v", key, gb, wb)
		}
	}
}

// TestFleetChaosFlapAndDeath extends the chaos coverage with a flapping DC
// (its uplink restarts three times in the flap window) and a permanently
// dead DC. The flapping DC is flagged and its conclusions discounted while
// the flapping lasts; the dead DC ends silent; and the rest of the fleet
// fuses bit-for-bit what an undisturbed run fuses.
func TestFleetChaosFlapAndDeath(t *testing.T) {
	faults := []chiller.Fault{chiller.MotorImbalance, chiller.GearToothWear, chiller.OilWhirl}
	const seedBase = 7400
	newCfg := func(spool string) FleetConfig {
		cfg := chaosFleetConfig(seedBase, spool)
		cfg.DCCount = 3
		cfg.Heartbeat = 10 * time.Minute
		hc := chaosHealthConfig()
		cfg.Health = &hc
		return cfg
	}
	setFaults := func(f *Fleet) {
		for i, st := range f.Stations {
			if err := st.Plant.SetFault(faults[i], 0.8); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Undisturbed reference: 4h + 3 hourly steps + 5h tail = 12h.
	base, err := NewFleet(newCfg(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	setFaults(base)
	for _, d := range []time.Duration{4 * time.Hour, time.Hour, time.Hour, time.Hour, 5 * time.Hour} {
		if err := base.Advance(d); err != nil {
			t.Fatal(err)
		}
	}
	waitHealthWatermark(t, base, fleetStart.Add(12*time.Hour))
	want := collectOutcome(t, base, faults)
	if err := base.Close(); err != nil {
		t.Fatal(err)
	}

	// Chaos run. Persistent spools carry reports across uplink restarts.
	f, err := NewFleet(newCfg(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	setFaults(f)
	if err := f.Advance(4 * time.Hour); err != nil {
		t.Fatal(err)
	}
	waitHealthWatermark(t, f, fleetStart.Add(4*time.Hour))

	// Station 2 dies for good: uplink closed, scheduler never advanced
	// again. Stations 0 and 1 carry on; station 1 flaps — a fresh uplink
	// incarnation before each of three hourly steps.
	if err := f.Stations[2].Uplink.Close(); err != nil {
		t.Fatal(err)
	}
	live := f.Stations[:2]
	for h := 1; h <= 3; h++ {
		if err := f.RestartUplink(1); err != nil {
			t.Fatal(err)
		}
		for _, st := range live {
			if err := st.DC.RunFor(time.Hour); err != nil {
				t.Fatal(err)
			}
		}
		for _, st := range live {
			if err := st.Uplink.Flush(time.Minute); err != nil {
				t.Fatal(err)
			}
		}
		waitHealthWatermark(t, f, fleetStart.Add(time.Duration(4+h)*time.Hour))
	}
	if got := f.PDME.Health().StateOf("dc-2"); got != HealthFlapping {
		t.Errorf("restarted DC state %v, want flapping", got)
	}
	machine1 := f.Stations[1].Machine.String()
	flagged := false
	for _, it := range f.PDME.PrioritizedList() {
		if it.Component == machine1 && it.Degraded && it.Reliability < 1 {
			flagged = true
		}
	}
	if !flagged {
		t.Error("flapping DC's conclusions not flagged degraded")
	}

	// Tail: stations 0 and 1 run another 5h with a stable uplink. The flap
	// records age out of the window, so their evidence is fresh and fully
	// reliable again at the end — the dead DC stays silent.
	for _, st := range live {
		if err := st.DC.RunFor(5 * time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	for _, st := range live {
		if err := st.Uplink.Flush(time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	waitHealthWatermark(t, f, fleetStart.Add(12*time.Hour))
	if got := f.PDME.Health().StateOf("dc-2"); got != HealthAlive {
		t.Errorf("station 1 state %v after flap window, want alive", got)
	}
	if got := f.PDME.Health().StateOf("dc-3"); got != HealthSilent {
		t.Errorf("dead DC state %v, want silent", got)
	}

	// The undisturbed stations fuse exactly the reference outcome.
	got := collectOutcome(t, f, faults)
	for key, wb := range want.beliefs {
		if strings.HasPrefix(key, "2|") {
			continue // the dead station diverges by design
		}
		if gb := got.beliefs[key]; math.Abs(gb-wb) > 1e-12 {
			t.Errorf("belief[%s] = %v under chaos, reference %v", key, gb, wb)
		}
	}
}
