package mpros

import (
	"net/http"

	"repro/internal/pdme"
	"repro/internal/proto"
	"repro/internal/serving"
	"repro/internal/shard"
)

// This file is the facade of the hierarchical fleet-of-fleets tier
// (internal/shard): consistent-hash sharding of DCs across many shard
// PDMEs, upward summary forwarding, and the global aggregator with
// graceful per-shard degradation. See DESIGN.md "Hierarchical fleet".

// Re-exported fleet-of-fleets types.
type (
	// ShardMember is one shard PDME in the ring (id + report address).
	ShardMember = shard.Member
	// ShardRing is the versioned deterministic DC→shard assignment.
	ShardRing = shard.Ring
	// ShardRouter is a DC-side shard-aware uplink with ring failover.
	ShardRouter = shard.Router
	// ShardRouterConfig parametrizes a ShardRouter.
	ShardRouterConfig = shard.RouterConfig
	// ShardForwarder streams a shard PDME's fused conclusions upward.
	ShardForwarder = shard.Forwarder
	// ShardForwarderConfig parametrizes a ShardForwarder.
	ShardForwarderConfig = shard.ForwarderConfig
	// Aggregator is the global tier fusing shard summaries.
	Aggregator = shard.Aggregator
	// AggregatorConfig parametrizes an Aggregator.
	AggregatorConfig = shard.AggregatorConfig
	// GlobalItem is one row of the aggregator's global ranked list.
	GlobalItem = shard.GlobalItem
	// CoverageReport is the aggregator's per-shard coverage metadata.
	CoverageReport = shard.CoverageReport
	// FusedSummary is the PDME→PDME wire envelope of fused state.
	FusedSummary = proto.FusedSummary
)

// NewShardRing builds a deterministic ring over shard members and the DC
// id population. Same inputs produce the identical assignment in every
// process.
func NewShardRing(members []ShardMember, dcids []string) (*ShardRing, error) {
	return shard.NewRing(members, dcids)
}

// NewShardRouter opens a DC-side router: reports spool locally and follow
// the ring, failing over to the successor when the assigned shard stalls.
func NewShardRouter(cfg ShardRouterConfig) (*ShardRouter, error) {
	return shard.NewRouter(cfg)
}

// ForwardSummaries attaches a summary forwarder to a shard PDME: every
// fused conclusion streams to the aggregator over the spooled uplink.
func ForwardSummaries(engine *pdme.PDME, cfg ShardForwarderConfig) (*ShardForwarder, error) {
	return shard.Forward(engine, cfg)
}

// NewAggregator builds the global tier.
func NewAggregator(cfg AggregatorConfig) (*Aggregator, error) {
	return shard.NewAggregator(cfg)
}

// AggregatorHandler mounts the aggregator's HTTP endpoints
// (/ranked, /belief, /coverage) with coverage metadata on every response.
func AggregatorHandler(a *Aggregator) http.Handler {
	return serving.AggregatorHandler(a)
}
